"""The work-stealing scheduler behind ``fanout``: ordered results,
stealing under cost mispredictions, the pinned degradation ladder
(raise → one entry, die → serial retry), and the ``REPRO_SCHED`` knob."""

import multiprocessing
import os
import time

import pytest

from repro import faultinject
from repro.errors import WorkerCrashed
from repro.obs.metrics import metrics
from repro.parallel import PARALLEL_STATS, fanout, fork_available
from repro.sched.scheduler import scheduler_mode

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="the scheduler forks persistent workers"
)


def _double(payload, item):
    return item * 2


def _sleepy(payload, item):
    # Items tagged "slow" hold their worker long enough for a sibling
    # to drain its own queue and come stealing.
    if item.startswith("slow"):
        time.sleep(0.3)
    return item.upper()


def _explode_on_b(payload, item):
    if item == "b":
        raise ValueError("boom on b")
    return item


def _die_hard(payload, item):
    # Item 2 is unrecoverable: kills any worker that runs it, and
    # raises when the parent's serial retry has a go.
    if item == 2:
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        raise ValueError("fails in the parent too")
    return item * 2


class TestOrderingAndEquivalence:
    def test_results_in_item_order(self):
        items = list(range(10))
        assert fanout(_double, None, items, jobs=3) == [
            i * 2 for i in items
        ]

    def test_matches_serial(self):
        items = list(range(7))
        serial = fanout(_double, None, items, jobs=1)
        parallel = fanout(_double, None, items, jobs=4)
        assert parallel == serial

    def test_cost_order_does_not_change_results(self):
        items = list(range(6))
        # Deliberately absurd costs: ordering is pure scheduling.
        out = fanout(
            _double, None, items, jobs=2, cost_of=lambda i: 100 - i
        )
        assert out == [i * 2 for i in items]

    def test_broken_cost_estimator_degrades_gracefully(self):
        def bad_cost(item):
            raise RuntimeError("no idea")

        items = list(range(5))
        assert fanout(_double, None, items, jobs=2, cost_of=bad_cost) == [
            i * 2 for i in items
        ]


class TestStealing:
    def test_idle_worker_steals_from_blocked_sibling(self):
        # With no cost hints items alternate across the two queues;
        # "slow" blocks its worker, so the other must steal the
        # blocked worker's queued items to finish the batch.
        items = ["a", "slow", "b", "c", "d", "e", "f", "g"]
        before = PARALLEL_STATS["steals"]
        out = fanout(_sleepy, None, items, jobs=2)
        assert out == [i.upper() for i in items]
        assert PARALLEL_STATS["steals"] > before

    def test_queue_wait_is_accounted(self):
        before_total = PARALLEL_STATS["queue_wait_s"]
        h_before = metrics.snapshot()["histograms"].get(
            "parallel.queue_wait", {"count": 0}
        )["count"]
        fanout(_double, None, list(range(6)), jobs=2)
        assert PARALLEL_STATS["queue_wait_s"] >= before_total
        h_after = metrics.snapshot()["histograms"]["parallel.queue_wait"]
        # One dispatch per item, each observed in the histogram.
        assert h_after["count"] == h_before + 6


class TestDegradationLadder:
    def test_raising_item_maps_through_on_error(self):
        out = fanout(
            _explode_on_b,
            None,
            ["a", "b", "c"],
            jobs=2,
            on_error=lambda item, exc: f"degraded:{item}:{exc}",
        )
        assert out[0] == "a" and out[2] == "c"
        assert out[1].startswith("degraded:b:boom")
        assert PARALLEL_STATS["worker_failures"] == 1

    def test_without_on_error_first_failure_reraises_after_drain(self):
        with pytest.raises(ValueError, match="boom on b"):
            fanout(_explode_on_b, None, ["a", "b", "c"], jobs=2)

    def test_killed_worker_recovers_via_parent_retry(self):
        # The crash rule fires in workers only; the parent's serial
        # retry (where it never fires) recovers the lost item.
        faultinject.install("parallel.worker@3:crash")
        out = fanout(_double, None, list(range(6)), jobs=2)
        assert out == [i * 2 for i in range(6)]
        assert PARALLEL_STATS["broken_pools"] >= 1
        assert PARALLEL_STATS["serial_retries"] >= 1

    def test_all_workers_dead_drains_queue_in_parent(self):
        # Every item crashes its worker; everything lands in the
        # parent's serial path and the batch still completes.
        faultinject.install("parallel.worker:crash::100")
        out = fanout(_double, None, list(range(4)), jobs=2)
        assert out == [i * 2 for i in range(4)]
        assert PARALLEL_STATS["broken_pools"] >= 2

    def test_crashed_item_recovers_in_parent(self):
        # The crash rule is worker-only, so the serial retry (parent)
        # recomputes the lost item successfully.
        faultinject.install("parallel.worker@2:crash::100")
        out = fanout(_double, None, list(range(4)), jobs=2)
        assert out == [i * 2 for i in range(4)]
        assert PARALLEL_STATS["serial_retries"] >= 1

    def test_unrecoverable_item_reaches_on_error_as_worker_crashed(self):
        seen = {}

        def on_error(item, exc):
            seen[item] = exc
            return "gone"

        out = fanout(
            _die_hard, None, list(range(4)), jobs=2, on_error=on_error
        )
        assert out == [0, 2, "gone", 6]
        assert isinstance(seen[2], WorkerCrashed)


class TestModeKnob:
    def test_default_is_steal(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHED", raising=False)
        assert scheduler_mode() == "steal"

    def test_static_opt_out_still_correct(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "static")
        before = PARALLEL_STATS["steals"]
        out = fanout(_double, None, list(range(8)), jobs=3)
        assert out == [i * 2 for i in range(8)]
        assert PARALLEL_STATS["steals"] == before  # the old pool path

    def test_bad_mode_warns_and_steals(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "turbo")
        with pytest.warns(RuntimeWarning, match="'turbo'"):
            assert scheduler_mode() == "steal"
