"""Fixtures for the scheduler suite: counter and fault hygiene, plus
a clean process-wide cost model per test (it is deliberately global —
the pipeline feeds it — so tests must not see each other's history)."""

import pytest

from repro import faultinject
from repro import parallel  # noqa: F401  (registers the metrics group)
from repro.obs.metrics import metrics
from repro.sched.costs import GLOBAL_COSTS


@pytest.fixture(autouse=True)
def clean_sched_state():
    metrics.reset("parallel")
    faultinject.clear()
    GLOBAL_COSTS.clear()
    yield
    faultinject.clear()
    metrics.reset("parallel")
    GLOBAL_COSTS.clear()
