"""The per-function cost model: exact in-process accumulation, decayed
persistence, tolerant loading, the fork-worker delta protocol, and the
static shape estimate used for never-seen functions."""

import json

import pytest

from repro.sched import (
    COSTS_FILENAME,
    CostModel,
    costs_path,
    estimate_cost,
)
from repro.sched.costs import SAVE_DECAY


class TestObservations:
    def test_cost_is_the_mean(self):
        m = CostModel()
        m.observe("fn", 1.0)
        m.observe("fn", 3.0)
        assert m.cost("fn") == pytest.approx(2.0)

    def test_unseen_function_is_none(self):
        assert CostModel().cost("never") is None

    def test_known_counts_functions(self):
        m = CostModel()
        m.observe("a", 1.0)
        m.observe("a", 1.0)
        m.observe("b", 1.0)
        assert m.known() == 2


class TestPersistence:
    def test_roundtrip_preserves_means(self, tmp_path):
        m = CostModel()
        m.observe("fast", 0.1)
        m.observe("slow", 2.0)
        m.observe("slow", 4.0)
        path = tmp_path / COSTS_FILENAME
        assert m.save(path)

        fresh = CostModel()
        assert fresh.load(path)
        # Decay scales count and total alike, so means survive.
        assert fresh.cost("fast") == pytest.approx(0.1)
        assert fresh.cost("slow") == pytest.approx(3.0)

    def test_save_decays_effective_samples(self, tmp_path):
        m = CostModel()
        m.observe("fn", 2.0)
        path = tmp_path / COSTS_FILENAME
        m.save(path)
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert doc["costs"]["fn"] == [1 * SAVE_DECAY, 2.0 * SAVE_DECAY]

    def test_load_merges_counts(self, tmp_path):
        # History (count 0.5 after decay) + a fresh slow observation:
        # the merged mean moves toward the new evidence.
        m = CostModel()
        m.observe("fn", 1.0)
        path = tmp_path / COSTS_FILENAME
        m.save(path)

        fresh = CostModel()
        fresh.observe("fn", 4.0)
        fresh.load(path)
        # [1 + 0.5 samples, 4.0 + 0.5 seconds] -> mean 3.0
        assert fresh.cost("fn") == pytest.approx(3.0)

    def test_load_once_dedups_by_path(self, tmp_path):
        m = CostModel()
        m.observe("fn", 1.0)
        path = tmp_path / COSTS_FILENAME
        m.save(path)
        fresh = CostModel()
        assert fresh.load(path, once=True)
        assert not fresh.load(path, once=True)
        assert fresh.cost("fn") == pytest.approx(1.0)

    def test_missing_file_is_cold_start(self, tmp_path):
        m = CostModel()
        assert not m.load(tmp_path / "absent.json")
        assert m.known() == 0

    @pytest.mark.parametrize(
        "doc",
        [
            "not json {",
            '{"version": 99, "costs": {}}',
            '{"version": 1, "costs": "nope"}',
            '[1, 2, 3]',
        ],
    )
    def test_foreign_or_torn_file_ignored(self, tmp_path, doc):
        path = tmp_path / COSTS_FILENAME
        path.write_text(doc)
        m = CostModel()
        assert not m.load(path)
        assert m.known() == 0

    def test_bad_records_skipped_good_ones_kept(self, tmp_path):
        path = tmp_path / COSTS_FILENAME
        path.write_text(json.dumps({
            "version": 1,
            "costs": {
                "good": [2, 4.0],
                "negative": [-1, 1.0],
                "bools": [True, 1.0],
                "short": [1],
                "text": ["x", "y"],
            },
        }))
        m = CostModel()
        assert m.load(path)
        assert m.known() == 1
        assert m.cost("good") == pytest.approx(2.0)

    def test_save_failure_returns_false(self, tmp_path):
        m = CostModel()
        m.observe("fn", 1.0)
        # The target is a directory: os.replace fails, save degrades.
        assert not m.save(tmp_path)

    def test_costs_path(self, tmp_path):
        assert costs_path(tmp_path).endswith(COSTS_FILENAME)


class TestDeltaProtocol:
    def test_delta_roundtrip(self):
        worker = CostModel()
        worker.observe("inherited", 1.0)
        baseline = worker.delta_snapshot()
        worker.observe("inherited", 3.0)
        worker.observe("new", 0.5)

        parent = CostModel()
        parent.observe("inherited", 1.0)  # the fork-shared history
        parent.merge_delta(worker.delta_since(baseline))
        assert parent.cost("inherited") == pytest.approx(2.0)
        assert parent.cost("new") == pytest.approx(0.5)

    def test_no_new_observations_is_empty_delta(self):
        m = CostModel()
        m.observe("fn", 1.0)
        assert m.delta_since(m.delta_snapshot()) == {}

    def test_registered_with_obs_aux_deltas(self):
        from repro.obs import trace as obs_trace

        assert "sched.costs" in obs_trace._AUX_DELTA


class _StubBody:
    """Just the shape estimate_cost duck-types: blocks + is_safe."""

    def __init__(self, blocks, safe=True):
        self.blocks = {f"bb{i}": None for i in range(blocks)}
        self.is_safe = safe


class TestEstimate:
    def body(self, blocks, safe=True):
        return _StubBody(blocks, safe=safe)

    def test_more_blocks_costs_more(self):
        small = estimate_cost(self.body(2))
        big = estimate_cost(self.body(8))
        assert big > small > 0

    def test_unsafe_doubles_block_weight(self):
        safe = self.body(4, safe=True)
        unsafe = self.body(4, safe=False)
        assert estimate_cost(unsafe) > estimate_cost(safe)

    def test_contract_clauses_add_weight(self):
        body = self.body(2)
        bare = estimate_cost(body)
        heavy = estimate_cost(
            body, {"requires": ["a", "b"], "ensures": ["c"]}
        )
        assert heavy > bare

    def test_attr_style_contract(self):
        class Spec:
            requires = ["a"]
            ensures = ["b", "c"]

        assert estimate_cost(self.body(2), Spec()) > estimate_cost(
            self.body(2)
        )

    def test_no_body_is_cheap_but_positive(self):
        assert estimate_cost(None, None) > 0
