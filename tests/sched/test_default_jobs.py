"""``default_jobs`` must respect the container's cgroup CPU quota: a
pod granted 2 CPUs on a 64-core node should fork 2 workers, not 64."""

import os

import pytest

from repro import parallel
from repro.parallel import cgroup_cpu_quota, default_jobs


def write(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


class TestCgroupV2:
    def test_quota_two_cpus(self, tmp_path):
        write(tmp_path, "cpu.max", "200000 100000\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) == 2

    def test_fractional_quota_rounds_up(self, tmp_path):
        write(tmp_path, "cpu.max", "150000 100000\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) == 2

    def test_sub_cpu_quota_is_one(self, tmp_path):
        write(tmp_path, "cpu.max", "50000 100000\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) == 1

    def test_max_means_unlimited(self, tmp_path):
        write(tmp_path, "cpu.max", "max 100000\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) is None

    def test_v2_beats_v1(self, tmp_path):
        write(tmp_path, "cpu.max", "400000 100000\n")
        write(tmp_path, "cpu/cpu.cfs_quota_us", "100000\n")
        write(tmp_path, "cpu/cpu.cfs_period_us", "100000\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) == 4


class TestCgroupV1:
    def test_quota_pair(self, tmp_path):
        write(tmp_path, "cpu/cpu.cfs_quota_us", "300000\n")
        write(tmp_path, "cpu/cpu.cfs_period_us", "100000\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) == 3

    def test_minus_one_means_unlimited(self, tmp_path):
        write(tmp_path, "cpu/cpu.cfs_quota_us", "-1\n")
        write(tmp_path, "cpu/cpu.cfs_period_us", "100000\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) is None


class TestRobustness:
    def test_missing_root_is_unlimited(self, tmp_path):
        assert cgroup_cpu_quota(root=str(tmp_path / "absent")) is None

    def test_garbage_files_are_unlimited(self, tmp_path):
        write(tmp_path, "cpu.max", "banana\n")
        write(tmp_path, "cpu/cpu.cfs_quota_us", "many\n")
        assert cgroup_cpu_quota(root=str(tmp_path)) is None


class TestDefaultJobs:
    def test_quota_caps_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(parallel, "cgroup_cpu_quota", lambda: 1)
        assert default_jobs() == 1

    def test_quota_above_cpu_count_is_ignored(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(parallel, "cgroup_cpu_quota", lambda: 4096)
        assert default_jobs() == (os.cpu_count() or 1)

    def test_env_knob_beats_quota(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        monkeypatch.setattr(parallel, "cgroup_cpu_quota", lambda: 1)
        assert default_jobs() == 7

    def test_no_quota_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(parallel, "cgroup_cpu_quota", lambda: None)
        assert default_jobs() == (os.cpu_count() or 1)
