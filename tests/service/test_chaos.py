"""Chaos suite: the daemon under injected faults — load shedding,
client loss, accept failures, worker crashes, and a wedged pool."""

import threading

import pytest

from repro import faultinject
from repro.obs import metrics
from repro.service.client import ServiceClient


class TestShedding:
    def test_overload_sheds_with_retry_after(self, local_daemon):
        # One slow in-flight request + a queue bound of 1: the first
        # submit occupies the dispatcher, the second fills the queue,
        # the third must be shed with a retry hint.
        d = local_daemon(queue_bound=1)
        faultinject.install("pipeline.verify_one@leaf:delay:0.6:1")
        responses = {}

        def submit(tag):
            with ServiceClient(d.config.socket) as c:
                responses[tag] = c.request(
                    {"op": "submit", "corpus": "demo", "id": tag}
                )

        before = metrics.snapshot()["counters"].get("service.shed", 0)
        first = threading.Thread(target=submit, args=("a",))
        first.start()
        # Wait until the dispatcher has actually picked "a" up.
        deadline = threading.Event()
        for _ in range(200):
            if d._current is not None:
                break
            deadline.wait(0.01)
        rest = [
            threading.Thread(target=submit, args=(tag,))
            for tag in ("b", "c")
        ]
        rest[0].start()
        for _ in range(200):
            if d.queue.qsize() >= 1:
                break
            deadline.wait(0.01)
        rest[1].start()
        for t in [first, *rest]:
            t.join(timeout=30)
        shed = [r for r in responses.values() if r.get("error") == "overloaded"]
        served = [r for r in responses.values() if r.get("ok")]
        assert len(shed) == 1 and len(served) == 2
        assert shed[0]["retry_after"] > 0
        assert metrics.snapshot()["counters"]["service.shed"] == before + 1

    def test_client_retries_past_shedding(self, local_daemon):
        d = local_daemon(queue_bound=1)
        # Warm the session so the retried submit is instant.
        with ServiceClient(d.config.socket) as c:
            c.submit("demo")
        with ServiceClient(d.config.socket) as c:
            r = c.submit("demo")  # ServiceClient.submit honours retry_after
            assert r["ok"]


class TestClientLoss:
    def test_disconnect_mid_request_does_not_kill_the_daemon(
        self, local_daemon
    ):
        d = local_daemon()
        faultinject.install("pipeline.verify_one@leaf:delay:0.3:1")
        from repro.service.protocol import encode

        c = ServiceClient(d.config.socket)
        c.sock.sendall(encode({"op": "submit", "corpus": "demo"}))
        for _ in range(200):
            if d._current is not None:
                break
            threading.Event().wait(0.01)
        c.sock.close()  # hang up while the request is in flight
        # The daemon must finish the work, note the lost client, and
        # keep serving.
        with ServiceClient(d.config.socket) as c2:
            assert c2.health()["ok"]
            r = c2.submit("demo")
            assert r["ok"] and r["reverified"] == []  # work still landed
        assert metrics.snapshot()["counters"].get("service.client_lost", 0) >= 1


class TestInjectedFailures:
    def test_accept_fault_is_an_internal_error_not_a_crash(
        self, local_daemon
    ):
        d = local_daemon()
        faultinject.install("service.accept:raise::1")
        with ServiceClient(d.config.socket) as c:
            r = c.request({"op": "health"})
            assert not r["ok"] and r["error"] == "internal"
            assert c.request({"op": "health"})["ok"]  # fault consumed

    def test_dispatch_fault_degrades_to_failure_entries(self, local_daemon):
        d = local_daemon()
        faultinject.install("service.dispatch:raise::1")
        with ServiceClient(d.config.socket) as c:
            r = c.submit("demo")
            # The faulted chunk degrades; the daemon stays up.
            assert not r["ok"]
            assert c.health()["ok"]
            r2 = c.submit("demo")
            assert r2["ok"]

    def test_torn_journal_append_is_survivable(self, local_daemon):
        d = local_daemon()
        faultinject.install("journal.append:torn::1")
        with ServiceClient(d.config.socket) as c:
            assert c.submit("demo")["ok"]
            assert c.submit("demo")["ok"]  # journal still writable


class TestWorkerFaults:
    def test_worker_crash_recovers_via_serial_retry(self, subproc_daemon):
        d = subproc_daemon(jobs=2, fault="parallel.worker@leaf:crash")
        with d.client() as c:
            r = c.submit("demo", jobs=2)
            assert r["ok"]
            assert all(s == "verified" for s in r["functions"].values())
            assert c.health()["ok"]

    def test_watchdog_restarts_a_wedged_pool(self, subproc_daemon):
        d = subproc_daemon(
            jobs=2, watchdog=1.0, fault="parallel.worker@top:delay:30"
        )
        with d.client() as c:
            r = c.submit("demo", jobs=2)
            # The wedged worker was killed, the chunk retried serially
            # in the daemon (where the worker-only fault cannot fire),
            # and the request still completed.
            assert r["ok"]
            assert all(s == "verified" for s in r["functions"].values())
            assert c.health()["ok"]
            s = c.status()
            assert s["counters"].get("service.watchdog_kills", 0) > 0
            r2 = c.submit("demo", jobs=2)
            assert r2["ok"]
            assert all(s == "verified" for s in r2["functions"].values())
