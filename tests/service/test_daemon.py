"""Daemon behaviour over real sockets (in-process, jobs=1):
request/response, admission, drain, malformed input."""

import threading

from repro.service import protocol
from repro.service.client import ServiceClient


class TestRequests:
    def test_health_and_status(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            h = c.health()
            assert h["ok"] and h["state"] == "ok" and not h["busy"]
            s = c.status()
            assert s["ok"] and s["sessions"] == {}

    def test_submit_cold_then_warm(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            r = c.submit("demo", id="r1")
            assert r["ok"] and r["id"] == "r1"
            assert len(r["reverified"]) == 4
            r2 = c.submit("demo", id="r2")
            assert r2["id"] == "r2"
            assert r2["reverified"] == [] and r2["cached"] == []
            assert "service.parse" not in r2["phases"]
            s = c.status()
            assert s["sessions"]["demo"]["requests"] == 2
            assert s["counters"]["service.requests"] >= 2

    def test_two_clients_share_the_session(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as a:
            a.submit("demo")
        with ServiceClient(d.config.socket) as b:
            r = b.submit("demo")
            assert r["reverified"] == []  # warm across connections

    def test_request_id_echoed_on_errors_too(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            r = c.request({"op": "submit", "corpus": "demo",
                           "functions": ["demo::nope"], "id": "bad1"})
            assert not r["ok"] and r["error"] == "bad-request"
            assert r["id"] == "bad1"


class TestMalformedInput:
    def test_bad_json_keeps_the_connection(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            c.sock.sendall(b"{not json}\n")
            r = c.request({"op": "health"})
            # First response answers the garbage, second the health.
            assert not r["ok"] and r["error"] == "bad-request"
            assert c.request({"op": "health"})["ok"]

    def test_unknown_op(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            r = c.request({"op": "explode"})
            assert r["error"] == "bad-request" and "op must be" in r["message"]

    def test_unknown_corpus(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            r = c.request({"op": "submit", "corpus": "no-such"})
            assert r["error"] == "bad-request"
            assert "unknown corpus" in r["message"]


class TestDrain:
    def test_drain_refuses_new_submits(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            c.submit("demo")
            assert c.drain()["draining"]
            r = c.request({"op": "submit", "corpus": "demo"})
            assert r["error"] == "draining"
        d.stopped.wait(timeout=10)
        assert d.stopped.is_set()

    def test_shutdown_op_stops_the_daemon(self, local_daemon):
        d = local_daemon()
        with ServiceClient(d.config.socket) as c:
            assert c.shutdown()["ok"]
        d.stopped.wait(timeout=10)
        assert d.stopped.is_set()

    def test_drain_is_idempotent(self, local_daemon):
        d = local_daemon()
        d.begin_drain("first")
        d.begin_drain("second")
        assert d.drain_reason == "first"


class TestConcurrentClients:
    def test_parallel_health_probes_during_submit(self, local_daemon):
        d = local_daemon()
        results = []

        def probe():
            with ServiceClient(d.config.socket) as c:
                results.append(c.health()["ok"])

        with ServiceClient(d.config.socket) as c:
            c.sock.sendall(protocol.encode({"op": "submit", "corpus": "demo"}))
            threads = [threading.Thread(target=probe) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            # health answered inline while the submit was in flight
            assert results == [True] * 4
            # finally collect the submit response so teardown is clean
            assert protocol.decode(next(c._lines))["ok"]
