"""Fixtures for the verification-service suite.

Two daemon flavours:

* ``local_daemon`` — in-process (threads in the test process), for
  protocol/admission/drain behaviour at ``jobs=1``. Fast, and fault
  rules installed with :func:`faultinject.install` apply directly.
* ``subproc_daemon`` — a real ``scripts/reprod.py`` process, for
  anything that forks a pool (``jobs>1``) or takes a SIGTERM: forking
  from the threaded test process would be unsound, and signals only
  make sense against a real process. Faults arrive via ``REPRO_FAULT``.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faultinject
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.daemon import VerifierDaemon
from repro.store import ProofStore

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def no_leaked_faults():
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.fixture
def local_daemon(tmp_path):
    """Factory for in-process daemons; every daemon (and its socket)
    is torn down at test end."""
    created = []

    def make(cache=True, **cfg):
        config = ServiceConfig(
            socket=str(tmp_path / f"reprod{len(created)}.sock"),
            cache_dir=str(tmp_path / "cache") if cache else None,
            **cfg,
        )
        d = VerifierDaemon(config)
        d.start()
        created.append(d)
        return d

    yield make
    for d in created:
        d.begin_drain("test-teardown")
        d.stopped.wait(timeout=10)
        d._teardown()


class SubprocDaemon:
    """One ``scripts/reprod.py`` process plus its cache root."""

    def __init__(self, tmp_path, *, jobs=1, fault=None, watchdog=None,
                 deadline=None, queue_bound=None, cache_dir=None):
        self.socket = str(tmp_path / "reprod.sock")
        self.cache = Path(cache_dir) if cache_dir else tmp_path / "cache"
        cmd = [
            sys.executable, str(REPO / "scripts" / "reprod.py"),
            "--socket", self.socket,
            "--cache-dir", str(self.cache),
            "--jobs", str(jobs),
        ]
        if watchdog is not None:
            cmd += ["--watchdog", str(watchdog)]
        if deadline is not None:
            cmd += ["--deadline", str(deadline)]
        if queue_bound is not None:
            cmd += ["--queue-bound", str(queue_bound)]
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        env.pop("REPRO_FAULT", None)
        if fault:
            env["REPRO_FAULT"] = fault
        self.proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, text=True
        )
        line = self.proc.stdout.readline()
        assert "listening" in line, f"daemon failed to start: {line!r}"

    def client(self, timeout=60.0) -> ServiceClient:
        return ServiceClient.connect(self.socket, timeout=timeout, wait=5.0)

    def store(self) -> ProofStore:
        return ProofStore(self.cache)

    def wait_for_first_publish(self, timeout=10.0) -> None:
        entries = self.cache / "entries"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if any(entries.rglob("*.json")):
                return
            time.sleep(0.02)
        raise AssertionError("no store entry appeared in time")

    def sigterm(self) -> None:
        self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout=20) -> int:
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def subproc_daemon(tmp_path):
    created = []

    def make(**kw):
        d = SubprocDaemon(tmp_path, **kw)
        created.append(d)
        return d

    yield make
    for d in created:
        d.kill()
