"""SIGTERM mid-dispatch: the daemon finishes the chunk in flight,
journals what it never got to, exits 0, and a restarted daemon
resumes exactly the drained remainder from the shared store."""

import threading


def _submit_in_background(daemon, out, jobs=1):
    def run():
        with daemon.client() as c:
            out["response"] = c.submit("demo", jobs=jobs)

    t = threading.Thread(target=run)
    t.start()
    return t


def _drain_records(daemon):
    return [
        rec for rec in daemon.store().journal.read()
        if rec.get("kind") == "drain"
    ]


class TestSigtermSerial:
    def test_drain_journal_and_resume(self, subproc_daemon, tmp_path):
        cache = tmp_path / "shared-cache"
        d = subproc_daemon(
            fault="pipeline.verify_one@mid:delay:1.5", cache_dir=cache
        )
        out = {}
        t = _submit_in_background(d, out)
        # leaf publishes fast; mid is the 1.5s chunk in flight when the
        # signal lands.
        d.wait_for_first_publish()
        d.sigterm()
        assert d.wait() == 0
        t.join(timeout=30)

        r = out["response"]
        assert not r["ok"]
        assert sorted(r["drained"]) == ["demo::side", "demo::top"]
        assert r["functions"]["demo::leaf"] == "verified"
        assert r["functions"]["demo::mid"] == "verified"  # chunk finished
        drains = _drain_records(d)
        assert drains
        assert sorted(drains[-1]["pending"]) == ["demo::side", "demo::top"]

        # Restart over the same store: only the drained half re-runs.
        d2 = subproc_daemon(cache_dir=cache)
        with d2.client() as c:
            r2 = c.submit("demo")
            assert r2["ok"]
            assert sorted(r2["reverified"]) == ["demo::side", "demo::top"]
            assert sorted(r2["cached"]) == ["demo::leaf", "demo::mid"]


class TestSigtermParallel:
    def test_drain_with_a_forked_pool(self, subproc_daemon):
        d = subproc_daemon(jobs=2, fault="pipeline.verify_one@mid:delay:1.5")
        out = {}
        t = _submit_in_background(d, out, jobs=2)
        # Chunks at jobs=2 are [leaf, mid], [top, side]; the fault keeps
        # chunk 1 in flight long enough for the signal to land there.
        d.wait_for_first_publish()
        d.sigterm()
        assert d.wait() == 0  # clean exit, pool reaped, no orphans
        t.join(timeout=30)

        r = out["response"]
        assert not r["ok"]
        assert sorted(r["drained"]) == ["demo::side", "demo::top"]
        assert r["functions"]["demo::leaf"] == "verified"
        assert r["functions"]["demo::mid"] == "verified"
        drains = _drain_records(d)
        assert sorted(drains[-1]["pending"]) == ["demo::side", "demo::top"]
