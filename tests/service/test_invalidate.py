"""Call-graph invalidation: graph shape, transitive closure, and the
dirty-set semantics (new / changed / invalidated+forced)."""

from repro.service.corpus import load_corpus
from repro.service.invalidate import (
    InvalidationIndex,
    call_graph,
    reverse_graph,
    transitive_callers,
)


def demo_graphs():
    corpus = load_corpus("demo")
    g = call_graph(corpus.program)
    return g, reverse_graph(g)


class TestGraph:
    def test_demo_call_graph(self):
        g, rev = demo_graphs()
        assert g["demo::top"] == ("demo::mid",)
        assert g["demo::mid"] == ("demo::leaf",)
        assert g["demo::leaf"] == ()
        assert g["demo::side"] == ()
        assert rev["demo::leaf"] == {"demo::mid"}
        assert rev["demo::mid"] == {"demo::top"}

    def test_transitive_callers_walks_upward(self):
        _, rev = demo_graphs()
        origin = transitive_callers(rev, {"demo::leaf"})
        assert origin == {
            "demo::mid": "demo::leaf",
            "demo::top": "demo::leaf",
        }

    def test_roots_excluded_and_cycles_terminate(self):
        rev = {"a": {"b"}, "b": {"a"}}
        origin = transitive_callers(rev, {"a"})
        assert origin == {"b": "a"}


class TestIndex:
    REV = {"leaf": {"mid"}, "mid": {"top"}}

    def test_everything_new_on_first_diff(self):
        idx = InvalidationIndex()
        fps = {"leaf": "f1", "mid": "f2"}
        out = idx.diff(fps, {"leaf": "c1", "mid": "c2"}, self.REV)
        assert out.reasons == {"leaf": "new", "mid": "new"}
        assert out.force == set()

    def test_clean_after_commit(self):
        idx = InvalidationIndex()
        fps = {"leaf": "f1", "mid": "f2"}
        digests = {"leaf": "c1", "mid": "c2"}
        idx.diff(fps, digests, self.REV)
        for n in fps:
            idx.commit(n, fps[n])
        assert not idx.diff(fps, digests, self.REV)

    def test_body_edit_stays_local(self):
        idx = InvalidationIndex()
        fps = {"leaf": "f1", "mid": "f2", "top": "f3"}
        digests = {"leaf": "c1", "mid": "c2", "top": "c3"}
        idx.diff(fps, digests, self.REV)
        for n in fps:
            idx.commit(n, fps[n])
        out = idx.diff({**fps, "leaf": "f1'"}, digests, self.REV)
        assert out.reasons == {"leaf": "changed"}
        assert out.force == set()

    def test_contract_edit_propagates_and_forces(self):
        idx = InvalidationIndex()
        # A leaf contract edit moves leaf's and mid's fingerprints
        # (mid hashes its direct callee's contract); top's fingerprint
        # is unchanged — exactly the case that must be *forced*.
        fps = {"leaf": "f1", "mid": "f2", "top": "f3"}
        digests = {"leaf": "c1", "mid": "c2", "top": "c3"}
        idx.diff(fps, digests, self.REV)
        for n in fps:
            idx.commit(n, fps[n])
        out = idx.diff(
            {"leaf": "f1'", "mid": "f2'", "top": "f3"},
            {**digests, "leaf": "c1'"},
            self.REV,
        )
        assert out.reasons == {
            "leaf": "changed",
            "mid": "changed",
            "top": "invalidated:leaf",
        }
        assert out.force == {"top"}

    def test_pending_force_survives_an_uncommitted_round(self):
        # The forced re-verification never produced a cacheable
        # verdict (drain/timeout): the function must stay forced, or
        # the unchanged fingerprint would resurrect the stale store
        # entry on the next submit.
        idx = InvalidationIndex()
        fps = {"leaf": "f1", "mid": "f2", "top": "f3"}
        digests = {"leaf": "c1", "mid": "c2", "top": "c3"}
        idx.diff(fps, digests, self.REV)
        for n in fps:
            idx.commit(n, fps[n])
        edited = {**digests, "leaf": "c1'"}
        idx.diff({"leaf": "f1'", "mid": "f2'", "top": "f3"}, edited, self.REV)
        # No commits at all (the round was drained) -> resubmit:
        out = idx.diff(
            {"leaf": "f1'", "mid": "f2'", "top": "f3"}, edited, self.REV
        )
        assert out.reasons["top"] == "invalidated:leaf"
        assert out.force == {"top"}
        assert out.reasons["leaf"] == "new"  # evicted, fp-keyed lookup is safe
        # A cacheable commit finally clears the pending force.
        idx.commit("top", "f3")
        assert "top" not in idx.diff(
            {"leaf": "f1'", "mid": "f2'", "top": "f3"}, edited, self.REV
        ).reasons
