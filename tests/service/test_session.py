"""The hot session: incremental dispatch, warm reuse, call-graph
invalidation, deadlines and drain — all in-process (no sockets)."""

import pytest

from repro.service.corpus import DEMO_FNS, load_corpus
from repro.service.session import ServiceSession, entries_status
from repro.store import ProofStore
from repro.store.store import STORE_STATS


@pytest.fixture
def session(tmp_path):
    return ServiceSession("demo", store=ProofStore(tmp_path / "cache"))


ALL = sorted(DEMO_FNS)


class TestIncremental:
    def test_cold_submit_verifies_everything(self, session):
        r = session.submit()
        assert r["ok"] and r["status"] == "verified"
        assert r["reverified"] == ALL
        assert set(r["reasons"].values()) == {"new"}
        assert "service.parse" in r["phases"]
        assert "service.logic" in r["phases"]

    def test_warm_resubmit_verifies_nothing_and_skips_setup(self, session):
        session.submit()
        r = session.submit()
        assert r["ok"]
        assert r["reverified"] == [] and r["cached"] == []
        assert r["reused"] == ALL
        # The acceptance observable: no program setup on the warm path.
        assert "service.parse" not in r["phases"]
        assert "service.logic" not in r["phases"]

    def test_body_edit_reverifies_exactly_that_function(self, session):
        session.submit()
        r = session.submit(params={"pad": {"demo::leaf": 2}})
        assert r["reverified"] == ["demo::leaf"]
        assert r["reasons"] == {"demo::leaf": "changed"}
        # The edit reloaded the program, so setup spans are back.
        assert "service.parse" in r["phases"]

    def test_contract_edit_reverifies_the_transitive_cone(self, session):
        session.submit()
        before = dict(STORE_STATS)
        r = session.submit(
            contracts={"demo::leaf": {"ensures": ["result == x", "x == x"]}}
        )
        assert r["ok"]
        assert r["reverified"] == ["demo::leaf", "demo::mid", "demo::top"]
        assert r["reasons"]["demo::top"] == "invalidated:demo::leaf"
        assert r["reasons"]["demo::mid"] == "changed"
        assert "demo::side" in r["reused"]
        # demo::top's fingerprint did not move: the store still holds
        # its old entry under the same key, and the forced dispatch
        # must NOT read it (leaf/mid changed fingerprints are honest
        # misses; only a hit could resurrect the stale result).
        assert STORE_STATS["hits"] - before.get("hits", 0) == 0

    def test_warm_after_contract_edit(self, session):
        session.submit()
        contracts = {"demo::leaf": {"ensures": ["result == x", "x == x"]}}
        session.submit(contracts=contracts)
        r = session.submit(contracts=contracts)
        assert r["reverified"] == [] and r["reused"] == ALL

    def test_restart_resumes_from_the_store(self, session, tmp_path):
        session.submit()
        fresh = ServiceSession("demo", store=ProofStore(tmp_path / "cache"))
        r = fresh.submit()
        # A fresh session trusts nothing ("new") but the warm store
        # answers everything: zero actual re-verifications.
        assert r["reverified"] == []
        assert r["cached"] == ALL

    def test_subset_request(self, session):
        r = session.submit(functions=["demo::leaf", "demo::mid"])
        assert sorted(r["functions"]) == ["demo::leaf", "demo::mid"]
        r2 = session.submit(functions=["demo::top"])
        assert r2["reverified"] == ["demo::top"]

    def test_jobs_parallel_dispatch_matches_serial(self, session):
        r = session.submit(jobs=2)
        assert r["ok"] and r["reverified"] == ALL
        assert all(s == "verified" for s in r["functions"].values())


class TestDegradation:
    def test_unknown_function_is_a_request_error(self, session):
        with pytest.raises(KeyError, match="demo::nope"):
            session.submit(functions=["demo::nope"])

    def test_unknown_corpus_is_a_request_error(self, tmp_path):
        with pytest.raises(KeyError, match="unknown corpus"):
            ServiceSession("no-such-corpus").submit()

    def test_expired_deadline_drains_with_timeout_entries(self, session):
        r = session.submit(deadline=0.0)
        assert not r["ok"] and r["status"] == "timeout"
        assert sorted(r["drained"]) == ALL
        assert set(r["functions"].values()) == {"timeout"}
        # The drain is journaled as the resume set.
        drains = [
            rec for rec in session.store.journal.read()
            if rec.get("kind") == "drain"
        ]
        assert drains and sorted(drains[-1]["pending"]) == ALL
        # Nothing was committed: the next submit re-verifies all.
        r2 = session.submit()
        assert r2["ok"] and r2["reverified"] == ALL

    def test_stop_check_drains_between_chunks(self, session):
        calls = []

        def stop_after_two():
            calls.append(1)
            return "drain" if len(calls) > 2 else None

        r = session.submit(stop_check=stop_after_two)
        done = [n for n, s in r["functions"].items() if s == "verified"]
        assert len(done) == 2 and len(r["drained"]) == 2
        assert r["status"] == "error"
        # Resume: exactly the drained half re-verifies; the completed
        # half answers from the store/session.
        r2 = session.submit()
        assert sorted(r2["reverified"]) == sorted(r["drained"])

    def test_nothing_cacheable_is_not_committed(self, session):
        session.submit(deadline=0.0)  # all timeout
        assert session.index.fps == {}

    def test_entries_status_severity(self, session):
        session.submit()
        entries = session._results["demo::leaf"]
        assert entries_status(entries) == "verified"
