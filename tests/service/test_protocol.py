"""NDJSON framing: encode/decode, validation, line bounds."""

import socket
import threading

import pytest

from repro.service import protocol


class TestCodec:
    def test_roundtrip(self):
        msg = {"op": "submit", "corpus": "demo", "functions": ["a", "b"]}
        assert protocol.decode(protocol.encode(msg).rstrip(b"\n")) == msg

    def test_encode_is_one_line(self):
        data = protocol.encode({"note": "with\nnewline"})
        assert data.endswith(b"\n") and data.count(b"\n") == 1

    def test_oversize_encode_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="MAX_LINE"):
            protocol.encode({"blob": "x" * protocol.MAX_LINE})

    def test_oversize_decode_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="MAX_LINE"):
            protocol.decode(b"x" * (protocol.MAX_LINE + 1))

    def test_garbage_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="JSON"):
            protocol.decode(b"{not json")
        with pytest.raises(protocol.ProtocolError, match="object"):
            protocol.decode(b"[1,2]")


class TestValidate:
    def test_ops(self):
        for op in protocol.OPS:
            msg = {"op": op}
            if op == "submit":
                msg["corpus"] = "demo"
            assert protocol.validate_request(msg) is None

    def test_unknown_op(self):
        assert "op must be" in protocol.validate_request({"op": "explode"})
        assert "op must be" in protocol.validate_request({})

    def test_submit_needs_corpus(self):
        assert "corpus" in protocol.validate_request({"op": "submit"})

    def test_bad_field_types(self):
        base = {"op": "submit", "corpus": "demo"}
        assert "functions" in protocol.validate_request(
            {**base, "functions": "demo::leaf"}
        )
        assert "params" in protocol.validate_request({**base, "params": [1]})
        assert "contracts" in protocol.validate_request(
            {**base, "contracts": "x"}
        )
        assert "deadline" in protocol.validate_request(
            {**base, "deadline": "soon"}
        )
        assert "jobs" in protocol.validate_request({**base, "jobs": 0})

    def test_error_response_shapes(self):
        r = protocol.error_response(
            "overloaded", "full", {"id": "r9"}, retry_after=0.2
        )
        assert r == {
            "ok": False,
            "error": "overloaded",
            "message": "full",
            "retry_after": 0.2,
            "id": "r9",
        }


class TestReadLines:
    def test_split_and_reassembled_lines(self):
        a, b = socket.socketpair()
        a.sendall(b'{"x":1}\n{"y"')
        a.sendall(b':2}\n')
        a.close()
        lines = list(protocol.read_lines(b))
        assert lines == [b'{"x":1}', b'{"y":2}']

    def test_oversized_line_raises(self):
        a, b = socket.socketpair()

        # A megabyte does not fit in the socketpair buffer; feed it
        # from a thread so the reader can drain while we send.
        def feed():
            try:
                a.sendall(b"x" * (protocol.MAX_LINE + 2))
            except OSError:
                pass  # reader bailed early and closed its end
            finally:
                a.close()

        t = threading.Thread(target=feed)
        t.start()
        try:
            with pytest.raises(protocol.ProtocolError, match="MAX_LINE"):
                list(protocol.read_lines(b))
        finally:
            b.close()
            t.join(timeout=10)
