"""End-to-end fault tolerance of ``HybridVerifier.run``.

For every failure mode — a worker killed with ``os._exit``, a worker
raising mid-verification, a budget-exhausted function — the pipeline
must return a *complete* report (no exception escapes), with the right
per-entry ``status``, and with every unaffected entry identical to the
``jobs=1`` serial run.
"""

import pytest

from repro import faultinject
from repro.budget import BudgetSpec
from repro.errors import BudgetExhausted
from repro.hybrid.pipeline import HybridVerifier
from repro.parallel import PARALLEL_STATS, fork_available, reset_parallel_stats

from tests.robustness.conftest import DIVERGING, FAST_FNS, fingerprint

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)


def make_verifier(small_env, **kw):
    program, ownables = small_env
    return HybridVerifier(program, ownables, {}, **kw)


@pytest.fixture(scope="module")
def serial_baseline(small_env):
    report = make_verifier(small_env).run(FAST_FNS, jobs=1)
    assert report.ok, report.render()
    return report


@needs_fork
class TestKilledWorker:
    def test_recovers_via_serial_retry(self, small_env, serial_baseline):
        """os._exit in a worker breaks the pool; the lost items are
        retried serially in the parent (where the crash rule does not
        fire) and the report comes back whole and identical."""
        reset_parallel_stats()
        faultinject.install("parallel.worker@fn2:crash")
        report = make_verifier(small_env).run(FAST_FNS, jobs=2)
        assert fingerprint(report) == fingerprint(serial_baseline)
        assert report.ok
        assert PARALLEL_STATS["broken_pools"] >= 1
        assert PARALLEL_STATS["serial_retries"] >= 1

    def test_unrecoverable_crash_is_one_crashed_entry(
        self, small_env, serial_baseline
    ):
        """A crash that also reproduces on serial retry (injected at the
        verifier, so it fires in parent and child alike) degrades into a
        single ``crashed`` entry; every other entry is untouched."""
        faultinject.install("verifier.function@fn1:raise:WorkerCrashed")
        report = make_verifier(small_env).run(FAST_FNS, jobs=2)
        assert len(report.entries) == len(FAST_FNS)
        by_fn = {e.function: e for e in report.entries}
        assert by_fn["fn1"].status == "crashed"
        assert not by_fn["fn1"].ok
        others = [e for e in fingerprint(report) if e[0] != "fn1"]
        expected = [e for e in fingerprint(serial_baseline) if e[0] != "fn1"]
        assert others == expected
        assert report.status == "crashed"
        assert report.counters["crashed"] == 1
        assert report.counters["verified"] == len(FAST_FNS) - 1


class TestRaisingWorker:
    @pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
    def test_internal_error_is_one_error_entry(
        self, small_env, serial_baseline, jobs
    ):
        faultinject.install("verifier.function@fn3:raise:RuntimeError")
        report = make_verifier(small_env).run(FAST_FNS, jobs=jobs)
        by_fn = {e.function: e for e in report.entries}
        assert by_fn["fn3"].status == "error"
        others = [e for e in fingerprint(report) if e[0] != "fn3"]
        expected = [e for e in fingerprint(serial_baseline) if e[0] != "fn3"]
        assert others == expected
        assert report.status == "error"

    @pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
    def test_serial_and_parallel_degrade_identically(self, small_env, jobs):
        faultinject.install("verifier.function@fn0:raise:WorkerCrashed")
        report = make_verifier(small_env).run(FAST_FNS, jobs=jobs)
        assert fingerprint(report)[0] == ("fn0", "gillian-rust", False, "crashed")


class TestBudgetExhaustion:
    @pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
    def test_step_budget_times_out_only_the_diverger(
        self, small_env, serial_baseline, jobs
    ):
        """A per-function step budget stops the diverging function with
        a ``timeout`` entry; the fast functions (far under the budget)
        verify exactly as in the unbudgeted serial run."""
        hv = make_verifier(small_env, budget=BudgetSpec(max_steps=50))
        report = hv.run(FAST_FNS + [DIVERGING], jobs=jobs)
        assert len(report.entries) == len(FAST_FNS) + 1
        by_fn = {e.function: e for e in report.entries}
        assert by_fn[DIVERGING].status == "timeout"
        assert not by_fn[DIVERGING].ok
        unaffected = [e for e in fingerprint(report) if e[0] != DIVERGING]
        assert unaffected == fingerprint(serial_baseline)
        assert report.status == "timeout"
        assert report.counters["timeout"] == 1

    def test_timeout_note_names_the_budget(self, small_env):
        hv = make_verifier(small_env, budget=BudgetSpec(max_steps=50))
        report = hv.run([DIVERGING], jobs=1)
        [entry] = report.entries
        assert entry.status == "timeout"
        detail = entry.detail
        assert detail is not None and detail.status == "timeout"
        assert any("step budget exhausted" in str(i) for i in detail.issues)

    def test_budget_exhausted_never_escapes_run(self, small_env):
        # Even a near-zero budget must produce a complete report.
        hv = make_verifier(
            small_env, budget=BudgetSpec(max_steps=1, max_solver_queries=1)
        )
        report = hv.run(FAST_FNS + [DIVERGING], jobs=1)
        assert len(report.entries) == len(FAST_FNS) + 1
        assert all(
            e.status in ("timeout", "verified") for e in report.entries
        ), report.render()
        assert {e.function: e for e in report.entries}[DIVERGING].status == "timeout"


class TestReportShape:
    def test_render_counts_degraded_entries(self, small_env):
        faultinject.install("verifier.function@fn1:raise:WorkerCrashed")
        hv = make_verifier(small_env, budget=BudgetSpec(max_steps=50))
        report = hv.run(FAST_FNS + [DIVERGING], jobs=1)
        rendered = report.render()
        assert "3 verified, 1 timeout, 1 crashed" in rendered
        assert "ALL VERIFIED" not in rendered

    def test_render_all_verified(self, small_env):
        report = make_verifier(small_env).run(FAST_FNS, jobs=1)
        assert "ALL VERIFIED" in report.render()

    def test_solver_budget_counters_surface_in_render(self, small_env):
        hv = make_verifier(small_env, budget=BudgetSpec(max_solver_queries=2))
        report = hv.run([DIVERGING], jobs=1)
        assert report.solver_stats["budget_stops"] >= 1
        assert "budget stops" in report.render()

    def test_budget_exhausted_is_catchable_at_solver_level(self, small_env):
        """The typed exception (not a bare Exception) is what crosses
        the solver boundary — callers can rely on the taxonomy."""
        program, ownables = small_env
        from repro.solver.core import Solver
        from repro.solver.terms import eq, intlit, fresh_var
        from repro.solver.sorts import INT
        from repro.budget import Budget

        solver = Solver()
        solver.budget = Budget(max_solver_queries=1)
        x = fresh_var("x", INT)
        solver.check_sat([eq(x, intlit(1))])
        with pytest.raises(BudgetExhausted):
            solver.check_sat([eq(x, intlit(2))])
