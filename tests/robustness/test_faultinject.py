"""The fault-injection harness itself: parsing, matching, actions."""

import time

import pytest

from repro import faultinject
from repro.errors import InjectedFault, WorkerCrashed

# The synthetic sites this suite fires by hand; registering them keeps
# parse() from warning about rules that "may never fire" (they do —
# we fire them ourselves below).
for _site in ("s", "v", "other", "site", "anything"):
    faultinject.register_site(_site, "test-only synthetic site")


class TestParse:
    def test_basic_rule(self):
        [r] = faultinject.parse("solver.check_sat:raise")
        assert (r.site, r.match, r.action, r.arg, r.remaining) == (
            "solver.check_sat", "", "raise", "", None,
        )

    def test_full_rule(self):
        [r] = faultinject.parse("verifier.function@push:raise:WorkerCrashed:2")
        assert r.site == "verifier.function"
        assert r.match == "push"
        assert r.action == "raise"
        assert r.arg == "WorkerCrashed"
        assert r.remaining == 2

    def test_multiple_rules(self):
        rules = faultinject.parse(
            "engine.step@client:delay:0.01, parallel.worker:crash"
        )
        assert [r.action for r in rules] == ["delay", "crash"]

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            faultinject.parse("site:explode")

    def test_store_site_rules(self):
        rules = faultinject.parse(
            "store.write@fn1:torn::1, store.read:ioerror, store.write:bitflip:7"
        )
        assert [(r.site, r.action) for r in rules] == [
            ("store.write", "torn"),
            ("store.read", "ioerror"),
            ("store.write", "bitflip"),
        ]

    def test_data_action_arg_must_be_an_offset(self):
        with pytest.raises(ValueError, match="byte offset"):
            faultinject.parse("store.write:bitflip:everywhere")

    def test_unknown_exception_rejected(self):
        with pytest.raises(ValueError, match="unknown exception"):
            faultinject.parse("site:raise:NoSuchError")

    def test_missing_action_rejected(self):
        with pytest.raises(ValueError, match="site:action"):
            faultinject.parse("just-a-site")

    def test_empty_spec(self):
        assert faultinject.parse("") == []
        faultinject.install("")
        assert not faultinject.active()

    def test_unknown_site_warns_but_keeps_the_rule(self):
        # A typo'd site must not silently test nothing.
        with pytest.warns(RuntimeWarning, match="not a registered"):
            [r] = faultinject.parse("store.wirte:torn")
        assert r.site == "store.wirte"  # kept: may register later

    def test_wildcard_site_never_warns(self):
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            faultinject.parse("*:raise")

    def test_registered_sites_cover_the_docstring_table(self):
        sites = faultinject.registered_sites()
        for expected in (
            "parallel.worker", "pipeline.verify_one", "store.write",
            "store.compact", "journal.append", "service.accept",
            "service.dispatch", "service.invalidate", "service.drain",
        ):
            assert expected in sites

    def test_register_site_is_idempotent(self):
        faultinject.register_site("s", "should not clobber")
        assert faultinject.registered_sites()["s"] == (
            "test-only synthetic site"
        )


class TestFire:
    def test_inert_without_rules(self):
        faultinject.clear()
        faultinject.fire("solver.check_sat")  # no-op

    def test_raise_default_exception(self):
        faultinject.install("s:raise")
        with pytest.raises(InjectedFault, match="fault injected at s"):
            faultinject.fire("s")

    def test_raise_named_exception_with_context(self):
        faultinject.install("v:raise:WorkerCrashed")
        with pytest.raises(WorkerCrashed, match="my_fn"):
            faultinject.fire("v", "my_fn")

    def test_site_mismatch_is_inert(self):
        faultinject.install("other:raise")
        faultinject.fire("s")

    def test_wildcard_site(self):
        faultinject.install("*:raise")
        with pytest.raises(InjectedFault):
            faultinject.fire("anything")

    def test_context_match(self):
        faultinject.install("v@push:raise:RuntimeError")
        faultinject.fire("v", "pop_front")  # context mismatch: inert
        with pytest.raises(RuntimeError):
            faultinject.fire("v", "LinkedList::push_front")

    def test_count_exhausts(self):
        faultinject.install("s:raise::2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faultinject.fire("s")
        faultinject.fire("s")  # third firing: rule went inert

    def test_delay(self):
        faultinject.install("s:delay:0.05")
        t0 = time.perf_counter()
        faultinject.fire("s")
        assert time.perf_counter() - t0 >= 0.05

    def test_crash_skipped_in_parent_process(self):
        # The crash action only ever kills pool workers; in the parent
        # it must be skipped WITHOUT consuming the rule (the serial
        # retry of a crashed item relies on exactly this).
        faultinject.install("parallel.worker:crash:1:1")
        faultinject.fire("parallel.worker", "item")  # still alive
        assert faultinject._rules[0].remaining == 1

    def test_ioerror_action(self):
        faultinject.install("store.write:ioerror:ENOSPC")
        with pytest.raises(OSError, match="ENOSPC"):
            faultinject.fire("store.write", "fn0")

    def test_fire_and_corrupt_split_a_site(self):
        # One site can carry both kinds of rule; each helper consumes
        # only its own, so a single rule never fires twice.
        faultinject.install("store.write:torn:4, store.write:delay:0")
        faultinject.fire("store.write", "fn0")  # delay only
        assert faultinject.corrupt("store.write", "fn0", b"x" * 16) == b"x" * 4

    def test_reload_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "s:raise")
        faultinject.reload_env()
        assert faultinject.active()
        with pytest.raises(InjectedFault):
            faultinject.fire("s")
        monkeypatch.delenv("REPRO_FAULT")
        faultinject.reload_env()
        assert not faultinject.active()
