"""The hardened fan-out: per-future error collection, broken-pool
retry, re-entrancy guard, and the REPRO_JOBS diagnostics."""

import os

import pytest

import repro.parallel as parallel
from repro import faultinject
from repro.errors import WorkerCrashed
from repro.parallel import (
    PARALLEL_STATS,
    default_jobs,
    fanout,
    fork_available,
    reset_parallel_stats,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)


# Module-level workers: pickled by reference into pool processes.
def double(payload, item):
    return item * 2


def fail_on_three(payload, item):
    if item == 3:
        raise ValueError(f"cannot process {item}")
    return item * 2


def exit_on_three(payload, item):
    if item == 3 and parallel.multiprocessing.parent_process() is not None:
        os._exit(1)
    return item * 2


@pytest.fixture(autouse=True)
def clean_faults():
    faultinject.clear()
    yield
    faultinject.clear()


class TestSerialPath:
    def test_plain(self):
        assert fanout(double, None, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_on_error_maps_failures(self):
        out = fanout(
            fail_on_three, None, [1, 3, 5], jobs=1,
            on_error=lambda item, exc: ("failed", item, type(exc).__name__),
        )
        assert out == [2, ("failed", 3, "ValueError"), 10]

    def test_without_on_error_raises(self):
        with pytest.raises(ValueError):
            fanout(fail_on_three, None, [1, 3, 5], jobs=1)


@needs_fork
class TestPoolPath:
    def test_worker_exception_does_not_lose_siblings(self):
        reset_parallel_stats()
        out = fanout(
            fail_on_three, None, [1, 2, 3, 4, 5], jobs=2,
            on_error=lambda item, exc: ("failed", item),
        )
        assert out == [2, 4, ("failed", 3), 8, 10]
        assert PARALLEL_STATS["worker_failures"] == 1

    def test_worker_exception_without_on_error_reraises_after_drain(self):
        with pytest.raises(ValueError, match="cannot process 3"):
            fanout(fail_on_three, None, [1, 2, 3, 4], jobs=2)

    def test_broken_pool_retries_serially(self):
        """os._exit(1) in a worker breaks the pool; the affected items
        re-run serially in the parent (where the guard in the worker fn
        keeps them alive) and the full result set comes back."""
        reset_parallel_stats()
        out = fanout(exit_on_three, None, [1, 2, 3, 4, 5], jobs=2)
        assert out == [2, 4, 6, 8, 10]
        assert PARALLEL_STATS["broken_pools"] == 1
        assert PARALLEL_STATS["serial_retries"] >= 1

    def test_reentrant_fanout_degrades_to_serial(self):
        reset_parallel_stats()
        parallel._ACTIVE = True
        try:
            out = fanout(double, None, [1, 2, 3], jobs=4)
        finally:
            parallel._ACTIVE = False
        assert out == [2, 4, 6]
        assert PARALLEL_STATS["serial_fallbacks"] == 1
        assert PARALLEL_STATS["fanouts"] == 0

    def test_payload_cleared_after_failure(self):
        with pytest.raises(ValueError):
            fanout(fail_on_three, None, [1, 3], jobs=2)
        assert parallel._PAYLOAD is None
        assert parallel._ACTIVE is False


class TestDefaultJobs:
    def test_valid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_invalid_env_warns_and_names_the_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.warns(RuntimeWarning, match="'lots'"):
            assert default_jobs() == (os.cpu_count() or 1)

    def test_zero_clamps_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == (os.cpu_count() or 1)
