"""The cooperative Budget: limits, deadlines, stickiness, env parsing."""

import pytest

from repro.budget import Budget, BudgetSpec
from repro.errors import BudgetExhausted


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestLimits:
    def test_solver_query_budget(self):
        b = Budget(max_solver_queries=3)
        for _ in range(3):
            b.tick_solver()
        with pytest.raises(BudgetExhausted) as ei:
            b.tick_solver("q4")
        assert ei.value.resource == "solver-query"
        assert ei.value.limit == 3

    def test_step_budget(self):
        b = Budget(max_steps=2)
        b.tick_step()
        b.tick_step()
        with pytest.raises(BudgetExhausted) as ei:
            b.tick_step("bb3")
        assert ei.value.resource == "step"
        assert ei.value.site == "bb3"

    def test_branch_budget(self):
        b = Budget(max_branches=10)
        for _ in range(10):
            b.tick_branch()
        with pytest.raises(BudgetExhausted):
            b.tick_branch()

    def test_no_limits_never_raises(self):
        b = Budget()
        for _ in range(1000):
            b.tick_solver()
            b.tick_step()
            b.tick_branch()

    def test_deadline(self):
        clock = FakeClock()
        b = Budget(deadline=5.0, clock=clock)
        b.tick_step()
        clock.t = 4.9
        b.tick_step()
        clock.t = 5.1
        with pytest.raises(BudgetExhausted) as ei:
            b.tick_step()
        assert ei.value.resource == "deadline"
        assert ei.value.limit == 5.0

    def test_deadline_checked_on_solver_tick(self):
        clock = FakeClock()
        b = Budget(deadline=1.0, clock=clock)
        clock.t = 2.0
        with pytest.raises(BudgetExhausted):
            b.tick_solver()

    def test_branch_tick_checks_deadline_periodically(self):
        clock = FakeClock()
        b = Budget(deadline=1.0, clock=clock)
        clock.t = 2.0
        # Branch ticks amortise the clock read; within 64 ticks the
        # deadline must have been noticed.
        with pytest.raises(BudgetExhausted):
            for _ in range(64):
                b.tick_branch()


class TestStickiness:
    def test_exhaustion_is_sticky(self):
        b = Budget(max_steps=1)
        b.tick_step()
        with pytest.raises(BudgetExhausted) as first:
            b.tick_step()
        # Every subsequent tick of ANY kind re-raises the same typed
        # exception immediately, so nested frames unwind fast.
        with pytest.raises(BudgetExhausted) as again:
            b.tick_solver()
        assert again.value is first.value
        with pytest.raises(BudgetExhausted):
            b.tick_branch()
        with pytest.raises(BudgetExhausted):
            b.check_deadline()


class TestSpec:
    def test_empty_spec_is_falsy_and_starts_none(self):
        spec = BudgetSpec()
        assert not spec
        assert spec.start() is None

    def test_nonempty_spec_starts_fresh_budgets(self):
        spec = BudgetSpec(max_steps=5)
        b1, b2 = spec.start(), spec.start()
        assert b1 is not b2
        for _ in range(5):
            b1.tick_step()
        with pytest.raises(BudgetExhausted):
            b1.tick_step()
        b2.tick_step()  # b2 unaffected: budgets are per-function

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "2.5")
        monkeypatch.setenv("REPRO_MAX_QUERIES", "100")
        monkeypatch.setenv("REPRO_MAX_STEPS", "200")
        monkeypatch.setenv("REPRO_MAX_BRANCHES", "300")
        spec = BudgetSpec.from_env()
        assert spec == BudgetSpec(2.5, 100, 200, 300)

    def test_from_env_empty(self, monkeypatch):
        for k in (
            "REPRO_DEADLINE",
            "REPRO_MAX_QUERIES",
            "REPRO_MAX_STEPS",
            "REPRO_MAX_BRANCHES",
        ):
            monkeypatch.delenv(k, raising=False)
        assert not BudgetSpec.from_env()

    def test_from_env_garbage_warns_and_ignores(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        monkeypatch.setenv("REPRO_MAX_STEPS", "many")
        with pytest.warns(RuntimeWarning):
            spec = BudgetSpec.from_env()
        assert spec.deadline is None
        assert spec.max_steps is None
