"""Acceptance: a per-function deadline of T seconds terminates a
deliberately diverging symbolic execution within 2·T and reports
``timeout`` — serial and parallel alike."""

import time

import pytest

from repro.budget import BudgetSpec
from repro.hybrid.pipeline import HybridVerifier
from repro.parallel import fork_available

from tests.robustness.conftest import DIVERGING, FAST_FNS

T = 0.6


def run_with_deadline(small_env, functions, jobs):
    program, ownables = small_env
    hv = HybridVerifier(program, ownables, {}, budget=BudgetSpec(deadline=T))
    started = time.perf_counter()
    report = hv.run(functions, jobs=jobs)
    return report, time.perf_counter() - started


class TestDeadline:
    def test_serial_terminates_within_2t(self, small_env):
        report, elapsed = run_with_deadline(small_env, [DIVERGING], jobs=1)
        assert elapsed < 2 * T, f"took {elapsed:.2f}s against a {T}s deadline"
        [entry] = report.entries
        assert entry.status == "timeout"
        assert not report.ok

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_terminates_within_2t(self, small_env):
        # Two items so the pool actually engages; the deadline is
        # per-function, so the fast sibling is untouched.
        report, elapsed = run_with_deadline(
            small_env, [DIVERGING, FAST_FNS[0]], jobs=2
        )
        assert elapsed < 2 * T, f"took {elapsed:.2f}s against a {T}s deadline"
        by_fn = {e.function: e for e in report.entries}
        assert by_fn[DIVERGING].status == "timeout"
        assert by_fn[FAST_FNS[0]].status == "verified"

    def test_deadline_applies_per_function_not_per_run(self, small_env):
        # Several fast functions plus a diverger: only the diverger
        # burns its own deadline; the run's total stays near T, not N·T.
        report, elapsed = run_with_deadline(
            small_env, FAST_FNS + [DIVERGING], jobs=1
        )
        statuses = {e.function: e.status for e in report.entries}
        assert statuses[DIVERGING] == "timeout"
        assert all(statuses[f] == "verified" for f in FAST_FNS)
        assert elapsed < 2 * T
