"""The error taxonomy: status mapping and pickle-through-the-pipe."""

import pickle

import pytest

from repro.errors import (
    BudgetExhausted,
    EncodingError,
    InjectedFault,
    VerificationError,
    WorkerCrashed,
    status_of,
)


class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (BudgetExhausted, WorkerCrashed, EncodingError, InjectedFault):
            assert issubclass(cls, VerificationError)
            assert issubclass(cls, Exception)

    def test_status_mapping(self):
        assert status_of(BudgetExhausted("deadline", 1.0, 1.5)) == "timeout"
        assert status_of(WorkerCrashed("boom")) == "crashed"
        assert status_of(EncodingError("bad spec")) == "error"
        assert status_of(InjectedFault("x")) == "error"
        assert status_of(RuntimeError("anything else")) == "error"
        assert status_of(KeyError("f")) == "error"

    def test_budget_exhausted_message(self):
        e = BudgetExhausted("deadline", 2.0, 2.173, site="LinkedList::push")
        s = str(e)
        assert "deadline" in s
        assert "2.173/2.0" in s
        assert "LinkedList::push" in s

    def test_budget_exhausted_message_without_limits(self):
        assert "budget exhausted" in str(BudgetExhausted())


class TestPickle:
    """Worker exceptions cross the process-pool pipe pickled; the
    taxonomy must survive the round trip with fields intact."""

    def test_budget_exhausted_roundtrip(self):
        e = BudgetExhausted("step", 100, 101, site="diverge")
        e2 = pickle.loads(pickle.dumps(e))
        assert isinstance(e2, BudgetExhausted)
        assert (e2.resource, e2.limit, e2.spent, e2.site) == (
            "step", 100, 101, "diverge",
        )
        assert str(e2) == str(e)
        assert status_of(e2) == "timeout"

    @pytest.mark.parametrize("cls", [WorkerCrashed, EncodingError, InjectedFault])
    def test_simple_roundtrip(self, cls):
        e2 = pickle.loads(pickle.dumps(cls("some reason")))
        assert isinstance(e2, cls)
        assert "some reason" in str(e2)
