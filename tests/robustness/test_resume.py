"""Checkpoint/resume: a run killed mid-flight (``kill -9`` semantics —
no cleanup, no atexit, no flushed buffers) loses only its in-flight
functions. The next run resumes from the store journal, re-verifies
exactly the incomplete functions, and produces a report identical to an
uninterrupted run's.

The victim pipeline runs in a forked child process so the kill is
real process death, not a simulated exception unwinding the stack.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro import faultinject
from repro.gilsonite.ownable import OwnableRegistry
from repro.hybrid.pipeline import HybridVerifier
from repro.lang.mir import Program
from repro.parallel import fork_available
from repro.store import ProofStore

from tests.robustness.conftest import FAST_FNS, _fast_body, fingerprint

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="resume tests fork a victim process"
)


def fresh_env():
    program = Program()
    for n in FAST_FNS:
        program.add_body(_fast_body(n))
    return program, OwnableRegistry(program)


def run_victim(env, store_root, jobs):
    """Fork a child that runs the pipeline against the store; returns
    the joined Process (caller asserts on exitcode)."""
    program, ownables = env

    def victim():
        HybridVerifier(
            program, ownables, {}, store=ProofStore(store_root)
        ).run(FAST_FNS, jobs=jobs)
        os._exit(0)

    p = multiprocessing.get_context("fork").Process(target=victim)
    p.start()
    return p


def entry_count(store_root):
    entries = store_root / "entries"
    if not entries.exists():
        return 0
    return sum(1 for _ in entries.glob("*/*.json"))


@pytest.mark.parametrize("jobs", [1, 2])
def test_killed_run_resumes_with_identical_report(tmp_path, jobs):
    env = fresh_env()
    baseline = HybridVerifier(*env, {}).run(FAST_FNS, jobs=1)
    assert baseline.ok

    # The child dies via os._exit the moment fn2's verification starts:
    # kill -9 semantics, after some functions have been published.
    faultinject.install("pipeline.verify_one@fn2:crash")
    p = run_victim(env, tmp_path, jobs)
    p.join(timeout=120)
    assert p.exitcode == 1
    faultinject.clear()

    store = ProofStore(tmp_path)
    info = store.resume_info()
    assert info["interrupted_runs"] == 1
    completed = info["completed"]
    assert "fn2" not in completed.values()  # the in-flight function
    if jobs == 1:
        # Serial order is deterministic: fn0 and fn1 made it.
        assert sorted(completed.values()) == ["fn0", "fn1"]
    else:
        # Pool scheduling is not, but something completed and fn2 never.
        assert 1 <= len(completed) <= 3

    resumed = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=jobs)
    assert fingerprint(resumed) == fingerprint(baseline)
    # Exactly the incomplete functions were re-verified.
    assert resumed.store_stats["hits"] == len(completed)
    assert resumed.store_stats["misses"] == len(FAST_FNS) - len(completed)
    assert resumed.store_stats["stores"] == len(FAST_FNS) - len(completed)

    # And the run after that is pure replay.
    warm = HybridVerifier(*env, {}, store=ProofStore(tmp_path)).run(
        FAST_FNS, jobs=jobs
    )
    assert fingerprint(warm) == fingerprint(baseline)
    assert warm.store_stats["hits"] == len(FAST_FNS)


def test_sigkill_during_publish_resumes(tmp_path):
    """A literal SIGKILL, delivered from outside while the victim is
    inside the store's write path (the worst instant: entry durable
    for some functions, mid-publish for the next)."""
    env = fresh_env()
    baseline = HybridVerifier(*env, {}).run(FAST_FNS, jobs=1)

    # Stall fn2's publish long enough to land the kill inside it.
    faultinject.install("store.write@fn2:delay:30")
    p = run_victim(env, tmp_path, jobs=1)
    deadline = time.monotonic() + 60
    while entry_count(tmp_path) < 2 and time.monotonic() < deadline:
        time.sleep(0.02)
    assert entry_count(tmp_path) >= 2
    os.kill(p.pid, signal.SIGKILL)
    p.join(timeout=60)
    assert p.exitcode == -signal.SIGKILL
    faultinject.clear()

    store = ProofStore(tmp_path)
    info = store.resume_info()
    assert info["interrupted_runs"] == 1
    assert sorted(info["completed"].values()) == ["fn0", "fn1"]
    assert info["bad_lines"] == 0  # journal appends are single writes

    resumed = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
    assert fingerprint(resumed) == fingerprint(baseline)
    assert resumed.store_stats["hits"] == 2
    assert resumed.store_stats["misses"] == 2
    # No torn entry: fn2 was staged in tmp/, never published.
    assert resumed.store_stats["corrupt"] == 0


def test_two_interrupted_runs_accumulate(tmp_path):
    """Resume composes: kill twice at different functions, and the
    third run still converges to the baseline report."""
    env = fresh_env()
    baseline = HybridVerifier(*env, {}).run(FAST_FNS, jobs=1)

    for target in ("fn1", "fn3"):
        faultinject.install(f"pipeline.verify_one@{target}:crash")
        p = run_victim(env, tmp_path, jobs=1)
        p.join(timeout=120)
        assert p.exitcode == 1
        faultinject.clear()

    store = ProofStore(tmp_path)
    info = store.resume_info()
    assert info["interrupted_runs"] == 2
    assert sorted(set(info["completed"].values())) == ["fn0", "fn1", "fn2"]

    resumed = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
    assert fingerprint(resumed) == fingerprint(baseline)
    assert resumed.store_stats["hits"] == 3
    assert resumed.store_stats["misses"] == 1
