"""Retry backoff: exponential with deterministic seeded jitter.

Many workers retrying after a shared pool crash must not thunder-herd
the store: delays grow exponentially, and a seeded multiplicative
jitter de-synchronises processes while keeping any one schedule
exactly reproducible (pinned below).
"""

import random

import pytest

from repro.errors import WorkerCrashed
from repro.parallel import backoff_schedule, jitter_seed, with_retries


class TestSchedule:
    def test_pinned_schedule(self):
        # The exact computed sleeps for a fixed seed: base * factor**k
        # stretched by 1 + 0.5 * Random(7).random() per retry.
        rng = random.Random(7)
        expected = [
            0.02 * (1 + 0.5 * rng.random()),
            0.04 * (1 + 0.5 * rng.random()),
            0.08 * (1 + 0.5 * rng.random()),
        ]
        assert backoff_schedule(4, base=0.02, seed=7) == pytest.approx(expected)

    def test_deterministic_per_seed(self):
        assert backoff_schedule(5, seed=42) == backoff_schedule(5, seed=42)
        assert backoff_schedule(5, seed=42) != backoff_schedule(5, seed=43)

    def test_exponential_growth_until_cap(self):
        sched = backoff_schedule(8, base=0.01, factor=2.0, cap=0.05, jitter=0.0)
        assert sched == pytest.approx(
            [0.01, 0.02, 0.04, 0.05, 0.05, 0.05, 0.05]
        )

    def test_jitter_bounded(self):
        for seed in range(20):
            for raw, jittered in zip(
                backoff_schedule(6, base=0.02, jitter=0.0, seed=seed),
                backoff_schedule(6, base=0.02, jitter=0.5, seed=seed),
            ):
                assert raw <= jittered < raw * 1.5

    def test_first_attempt_never_waits(self):
        assert backoff_schedule(1) == []
        assert backoff_schedule(0) == []

    def test_seed_varies_by_item_and_process(self):
        assert jitter_seed("fn0") != jitter_seed("fn1")
        assert jitter_seed("fn0") == jitter_seed("fn0")


class TestWithRetries:
    def test_sleeps_follow_the_schedule(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.parallel.time.sleep", slept.append)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise OSError("transient")
            return "ok"

        assert (
            with_retries(flaky, attempts=4, backoff=0.02, seed=7) == "ok"
        )
        assert slept == pytest.approx(backoff_schedule(4, base=0.02, seed=7))

    def test_final_failure_reraises_after_schedule(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.parallel.time.sleep", slept.append)

        def always(): raise WorkerCrashed("still dead")

        with pytest.raises(WorkerCrashed):
            with_retries(
                always, attempts=3, backoff=0.01,
                exceptions=(WorkerCrashed,), seed=1,
            )
        assert slept == pytest.approx(backoff_schedule(3, base=0.01, seed=1))
