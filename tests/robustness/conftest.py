"""Shared fixtures for the fault-tolerance suite.

The synthetic program keeps these tests fast (each function verifies
in a few ms) while exercising the same pipeline surface as the real
``rustlib`` programs: unsafe bodies, ``show_safety`` specs, the
process pool, budgets and fault injection.
"""

import pytest

from repro import faultinject
from repro.gilsonite.ownable import OwnableRegistry
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import U64

FAST_FNS = ["fn0", "fn1", "fn2", "fn3"]
DIVERGING = "diverge"


def _fast_body(name: str):
    fn = BodyBuilder(name, params=[("x", U64)], ret=U64)
    bb = fn.block()
    bb.assign(fn.ret_place, fn.binop("add", fn.copy("x"), fn.const_int(0, U64)))
    bb.ret()
    return fn.finish()


def _diverging_body():
    """``loop { i += 1 }`` — every iteration grows the path condition
    and issues fresh overflow-check solver queries, so wall-clock per
    step grows without bound: the canonical diverging symbolic
    execution a deadline must be able to stop."""
    fn = BodyBuilder(DIVERGING, params=[("x", U64)], ret=U64)
    bb0 = fn.block()
    i = fn.local("i", U64)
    bb1 = fn.block()
    bb0.assign(i, fn.copy("x"))
    bb0.goto(bb1)
    bb1.assign(i, fn.binop("add", fn.copy(i), fn.const_int(1, U64)))
    bb1.goto(bb1)
    return fn.finish()


@pytest.fixture(scope="module")
def small_env():
    program = Program()
    for n in FAST_FNS:
        program.add_body(_fast_body(n))
    program.add_body(_diverging_body())
    return program, OwnableRegistry(program)


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """Every test starts and ends with a clean fault table."""
    faultinject.clear()
    yield
    faultinject.clear()


def fingerprint(report):
    """Everything observable about a report except wall-clock."""
    return [(e.function, e.half, e.ok, e.status) for e in report.entries]
