"""Tests for the layout engine: strategies, padding, niche optimisation.

These pin down the behaviour that Fig. 4 of the paper illustrates: the
same structure admits several layouts depending on compiler choices.
"""

import pytest

from repro.lang.layout import (
    ALL_STRATEGIES,
    DECLARED,
    LARGEST_FIRST,
    LayoutEngine,
    SMALLEST_FIRST,
    UnsizedTypeError,
)
from repro.lang.types import (
    BOOL,
    CHAR,
    U8,
    U16,
    U32,
    U64,
    UNIT,
    AdtTy,
    ArrayTy,
    ParamTy,
    RawPtrTy,
    RefTy,
    TupleTy,
    TypeRegistry,
    enum_def,
    option_ty,
    struct_def,
)


@pytest.fixture()
def registry():
    reg = TypeRegistry()
    # The Fig. 4 structure: struct S { x: u32, y: u64 }
    reg.define(struct_def("S", [("x", U32), ("y", U64)]))
    reg.define(
        struct_def(
            "Node",
            [
                ("elem", ParamTy("T")),
                ("next", option_ty(RawPtrTy(AdtTy("Node", (ParamTy("T"),))))),
                ("prev", option_ty(RawPtrTy(AdtTy("Node", (ParamTy("T"),))))),
            ],
            params=("T",),
        )
    )
    return reg


class TestPrimitiveSizes:
    def test_ints(self, registry):
        eng = LayoutEngine(registry)
        assert eng.size_of(U8) == 1
        assert eng.size_of(U32) == 4
        assert eng.size_of(U64) == 8

    def test_bool_char_unit(self, registry):
        eng = LayoutEngine(registry)
        assert eng.size_of(BOOL) == 1
        assert eng.size_of(CHAR) == 4
        assert eng.size_of(UNIT) == 0

    def test_pointers(self, registry):
        eng = LayoutEngine(registry)
        assert eng.size_of(RawPtrTy(U8)) == 8
        assert eng.size_of(RefTy(U64, mutable=True)) == 8

    def test_array(self, registry):
        eng = LayoutEngine(registry)
        assert eng.size_of(ArrayTy(U32, 5)) == 20

    def test_param_unsized(self, registry):
        eng = LayoutEngine(registry)
        with pytest.raises(UnsizedTypeError):
            eng.size_of(ParamTy("T"))


class TestFig4Structure:
    """struct S { x: u32, y: u64 } — both orderings from Fig. 4."""

    def test_size_is_16_under_all_strategies(self, registry):
        # 4 + 8 plus padding to align u64: always 16 bytes.
        for strat in ALL_STRATEGIES:
            eng = LayoutEngine(registry, strat)
            assert eng.size_of(AdtTy("S")) == 16

    def test_largest_first_puts_y_first(self, registry):
        eng = LayoutEngine(registry, LARGEST_FIRST)
        lo = eng.struct_layout(AdtTy("S"))
        assert lo.field_offset(1) == 0  # y: u64 first
        assert lo.field_offset(0) == 8  # x: u32 after

    def test_smallest_first_puts_x_first(self, registry):
        eng = LayoutEngine(registry, SMALLEST_FIRST)
        lo = eng.struct_layout(AdtTy("S"))
        assert lo.field_offset(0) == 0
        assert lo.field_offset(1) == 8  # padded to 8

    def test_declared_matches_c_like(self, registry):
        eng = LayoutEngine(registry, DECLARED)
        lo = eng.struct_layout(AdtTy("S"))
        assert lo.field_offset(0) == 0
        assert lo.field_offset(1) == 8

    def test_offsets_differ_between_strategies(self, registry):
        # The essence of Fig. 4: interpretations genuinely differ.
        offs = set()
        for strat in ALL_STRATEGIES:
            eng = LayoutEngine(registry, strat)
            lo = eng.struct_layout(AdtTy("S"))
            offs.add((lo.field_offset(0), lo.field_offset(1)))
        assert len(offs) > 1


class TestNicheOptimisation:
    def test_option_raw_ptr_is_pointer_sized(self, registry):
        # §3: niche optimisation — Option<*mut T> takes 8 bytes.
        eng = LayoutEngine(registry)
        ty = option_ty(RawPtrTy(AdtTy("Node", (U64,))))
        assert eng.size_of(ty) == 8
        assert eng.enum_layout(ty).niche

    def test_option_u64_is_tagged(self, registry):
        eng = LayoutEngine(registry)
        ty = option_ty(U64)
        lo = eng.enum_layout(ty)
        assert not lo.niche
        assert lo.tag_offset == 0
        assert eng.size_of(ty) == 16  # 1-byte tag padded to u64 align

    def test_multi_variant_enum_tagged(self, registry):
        registry.define(
            enum_def(
                "Tri",
                [("A", []), ("B", [("0", U8)]), ("C", [("0", U64)])],
            )
        )
        eng = LayoutEngine(registry)
        lo = eng.enum_layout(AdtTy("Tri"))
        assert not lo.niche
        assert lo.tag_size == 1
        assert lo.size == 16


class TestNodeLayout:
    def test_node_u64(self, registry):
        eng = LayoutEngine(registry)
        # Node<u64>: elem u64 + 2 niche-optimised Option<*mut _> = 24.
        assert eng.size_of(AdtTy("Node", (U64,))) == 24

    def test_tuple_layout(self, registry):
        eng = LayoutEngine(registry)
        assert eng.size_of(TupleTy((U8, U64, U8))) == 16

    def test_alignment_of_aggregate(self, registry):
        eng = LayoutEngine(registry)
        assert eng.align_of(AdtTy("S")) == 8
