"""Tests for MIR construction, the builder, and place typing."""

import pytest

from repro.lang.builder import RETURN_PLACE, BodyBuilder
from repro.lang.mir import Place, Program
from repro.lang.pretty import pretty_body
from repro.lang.types import (
    BOOL,
    U32,
    U64,
    USIZE,
    AdtTy,
    ParamTy,
    RawPtrTy,
    RefTy,
    TypeRegistry,
    option_ty,
    struct_def,
)
from repro.lang.typing import TypingError, operand_ty, place_ty, rvalue_ty


@pytest.fixture()
def program():
    prog = Program()
    prog.registry.define(
        struct_def(
            "Pair",
            [("a", U32), ("b", U64)],
        )
    )
    prog.registry.define(
        struct_def(
            "Node",
            [
                ("elem", ParamTy("T")),
                ("next", option_ty(RawPtrTy(AdtTy("Node", (ParamTy("T"),))))),
            ],
            params=("T",),
        )
    )
    return prog


def build_simple_body():
    fn = BodyBuilder("double", params=[("x", U64)], ret=U64)
    bb0 = fn.block()
    bb0.assign(fn.ret_place, fn.binop("add", fn.copy("x"), fn.copy("x")))
    bb0.ret()
    return fn.finish()


class TestBuilder:
    def test_simple_body(self):
        body = build_simple_body()
        assert body.entry == "bb0"
        assert body.return_ty == U64
        assert len(body.blocks["bb0"].statements) == 1

    def test_unterminated_block_rejected(self):
        fn = BodyBuilder("f", params=[], ret=U64)
        fn.block()
        with pytest.raises(ValueError):
            fn.finish()

    def test_duplicate_local_rejected(self):
        fn = BodyBuilder("f", params=[], ret=U64)
        fn.local("x", U64)
        with pytest.raises(ValueError):
            fn.local("x", U32)

    def test_double_termination_rejected(self):
        fn = BodyBuilder("f", params=[], ret=U64)
        bb = fn.block()
        bb.ret()
        with pytest.raises(ValueError):
            bb.ret()

    def test_if_else_switch(self):
        fn = BodyBuilder("f", params=[("c", BOOL)], ret=U64)
        bb0 = fn.block()
        then = fn.block()
        els = fn.block()
        bb0.if_else(fn.copy("c"), then, els)
        then.assign(fn.ret_place, fn.const_int(1, U64))
        then.ret()
        els.assign(fn.ret_place, fn.const_int(0, U64))
        els.ret()
        body = fn.finish()
        term = body.blocks["bb0"].terminator
        assert term.otherwise == "bb1"
        assert term.targets == ((0, "bb2"),)

    def test_pretty_printer_roundtrips_names(self):
        text = pretty_body(build_simple_body())
        assert "fn double" in text
        assert "add(copy x, copy x)" in text


class TestPlaceTyping:
    def test_struct_field(self, program):
        fn = BodyBuilder("f", params=[("p", AdtTy("Pair"))], ret=U64)
        bb = fn.block()
        bb.ret()
        body = fn.finish()
        assert place_ty(program, body, Place("p").field(1)).ty == U64

    def test_deref_raw_ptr(self, program):
        ptr = RawPtrTy(AdtTy("Pair"))
        fn = BodyBuilder("f", params=[("p", ptr)], ret=U64)
        fn.block().ret()
        body = fn.finish()
        assert place_ty(program, body, Place("p").deref()).ty == AdtTy("Pair")
        assert place_ty(program, body, Place("p").deref().field(0)).ty == U32

    def test_deref_ref(self, program):
        r = RefTy(U64, mutable=True)
        fn = BodyBuilder("f", params=[("r", r)], ret=U64)
        fn.block().ret()
        body = fn.finish()
        assert place_ty(program, body, Place("r").deref()).ty == U64

    def test_enum_needs_downcast(self, program):
        fn = BodyBuilder("f", params=[("o", option_ty(U64))], ret=U64)
        fn.block().ret()
        body = fn.finish()
        with pytest.raises(TypingError):
            place_ty(program, body, Place("o").field(0))
        ok = place_ty(program, body, Place("o").downcast(1).field(0))
        assert ok.ty == U64

    def test_recursive_node(self, program):
        node = AdtTy("Node", (U64,))
        fn = BodyBuilder("f", params=[("n", RawPtrTy(node))], ret=U64)
        fn.block().ret()
        body = fn.finish()
        next_ty = place_ty(program, body, Place("n").deref().field(1)).ty
        assert str(next_ty) == "Option<*mut Node<u64>>"

    def test_operand_and_rvalue_ty(self, program):
        fn = BodyBuilder("f", params=[("x", U64)], ret=BOOL)
        fn.block().ret()
        body = fn.finish()
        assert operand_ty(program, body, fn.copy("x")) == U64
        assert rvalue_ty(program, body, fn.binop("lt", fn.copy("x"), fn.copy("x"))) == BOOL
        assert rvalue_ty(program, body, fn.ref("x", mutable=True)) == RefTy(U64, True, "'a")
        assert rvalue_ty(program, body, fn.addr_of("x")) == RawPtrTy(U64, True)
