"""Tests for the MIR pretty-printer."""

from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.pretty import pretty_body, pretty_program
from repro.lang.types import U64, USIZE, option_ty


def sample_body():
    fn = BodyBuilder("demo", params=[("x", U64)], ret=option_ty(U64), generics=("T",))
    bb0 = fn.block()
    t = fn.local("t", U64)
    bb0.assign(t, fn.binop("add", fn.copy("x"), fn.const_int(1, U64)))
    bb_none = fn.block("bb_none")
    bb_some = fn.block("bb_some")
    d = fn.local("d", USIZE)
    bb0.assign(d, fn.binop("eq", fn.copy(t), fn.const_int(0, U64)))
    bb0.if_else(fn.copy(d), bb_none, bb_some)
    bb_none.assign(fn.ret_place, fn.aggregate(option_ty(U64), [], variant=0))
    bb_none.ret()
    bb_some.mutref_auto_resolve("x")
    bb_some.assign(fn.ret_place, fn.aggregate(option_ty(U64), [fn.copy(t)], variant=1))
    bb_some.ret()
    return fn.finish()


class TestPrettyBody:
    def test_signature_line(self):
        text = pretty_body(sample_body())
        assert "fn demo<T>(x: u64) -> Option<u64>" in text

    def test_locals_declared(self):
        text = pretty_body(sample_body())
        assert "let t: u64;" in text

    def test_blocks_and_terminators(self):
        text = pretty_body(sample_body())
        assert "bb0:" in text
        assert "switch" in text
        assert text.count("return;") == 2

    def test_ghost_statement_rendered(self):
        text = pretty_body(sample_body())
        assert "mutref_auto_resolve!(x)" in text

    def test_program_lists_adts(self):
        program = Program()
        program.add_body(sample_body())
        text = pretty_program(program)
        assert "enum Option<T>;" in text
        assert "fn demo" in text
