"""Tests for the Rust-like type grammar and registry."""

import pytest

from repro.lang.types import (
    ALL_INT_TYPES,
    BOOL,
    I8,
    I32,
    I128,
    U8,
    U64,
    UNIT,
    USIZE,
    AdtTy,
    ArrayTy,
    IntTy,
    ParamTy,
    RawPtrTy,
    RefTy,
    TupleTy,
    TypeRegistry,
    enum_def,
    is_zero_sized,
    option_ty,
    struct_def,
)


class TestIntTypes:
    def test_twelve_kinds(self):
        # The paper stresses that Rust has 12 primitive machine integer
        # types taking between 1 and 16 bytes (§3).
        assert len(ALL_INT_TYPES) == 12
        sizes = {t.size for t in ALL_INT_TYPES}
        assert min(sizes) == 1
        assert max(sizes) == 16

    def test_signed_ranges(self):
        assert I8.min_value == -128
        assert I8.max_value == 127
        assert I32.max_value == 2**31 - 1

    def test_unsigned_ranges(self):
        assert U8.min_value == 0
        assert U8.max_value == 255
        assert U64.max_value == 2**64 - 1
        assert USIZE.max_value == 2**64 - 1

    def test_i128_is_16_bytes(self):
        assert I128.size == 16

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            IntTy("i7")


class TestTypeDisplay:
    def test_option(self):
        assert str(option_ty(U64)) == "Option<u64>"

    def test_raw_ptr(self):
        assert str(RawPtrTy(AdtTy("Node", (ParamTy("T"),)))) == "*mut Node<T>"

    def test_ref(self):
        assert str(RefTy(U8, mutable=True, lifetime="'k")) == "&'k mut u8"

    def test_array(self):
        assert str(ArrayTy(U8, 16)) == "[u8; 16]"


class TestRegistry:
    def test_builtin_option(self):
        reg = TypeRegistry()
        d = reg.lookup("Option")
        assert not d.is_struct
        assert [v.name for v in d.variants] == ["None", "Some"]

    def test_define_and_instantiate_struct(self):
        reg = TypeRegistry()
        reg.define(
            struct_def(
                "Node",
                [
                    ("elem", ParamTy("T")),
                    ("next", option_ty(RawPtrTy(AdtTy("Node", (ParamTy("T"),))))),
                ],
                params=("T",),
            )
        )
        ty = AdtTy("Node", (U64,))
        assert str(reg.field_ty(ty, 0, 0)) == "u64"
        assert str(reg.field_ty(ty, 0, 1)) == "Option<*mut Node<u64>>"

    def test_field_index_by_name(self):
        reg = TypeRegistry()
        reg.define(struct_def("P", [("x", U8), ("y", U64)]))
        assert reg.field_index(AdtTy("P"), "y") == 1

    def test_duplicate_rejected(self):
        reg = TypeRegistry()
        reg.define(struct_def("S", [("a", U8)]))
        with pytest.raises(ValueError):
            reg.define(struct_def("S", [("a", U8)]))

    def test_wrong_arity_rejected(self):
        reg = TypeRegistry()
        with pytest.raises(ValueError):
            reg.instantiate(AdtTy("Option"))

    def test_enum_variant_index(self):
        reg = TypeRegistry()
        d = reg.lookup("Option")
        assert d.variant_index("None") == 0
        assert d.variant_index("Some") == 1
        with pytest.raises(KeyError):
            d.variant_index("Neither")

    def test_subst_nested(self):
        reg = TypeRegistry()
        t = option_ty(RawPtrTy(AdtTy("Node", (ParamTy("T"),))))
        out = reg.subst(t, {"T": U64})
        assert str(out) == "Option<*mut Node<u64>>"


class TestZeroSized:
    def test_unit(self):
        assert is_zero_sized(UNIT)

    def test_empty_tuple_of_units(self):
        assert is_zero_sized(TupleTy((UNIT, UNIT)))

    def test_empty_array(self):
        assert is_zero_sized(ArrayTy(U64, 0))

    def test_non_zst(self):
        assert not is_zero_sized(BOOL)
        assert not is_zero_sized(TupleTy((UNIT, U8)))
