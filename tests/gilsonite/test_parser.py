"""Tests for the textual gilsonite! front-end (§2.2, Fig. 2) and the
Rust type parser behind it."""

import pytest

import repro.rustlib.linked_list as ll
from repro.core.heap.values import ty_to_sort
from repro.gilsonite.ast import (
    Emp,
    Exists,
    Observation,
    PointsTo,
    PointsToUninit,
    Pred,
    Pure,
    Star,
    iter_parts,
)
from repro.gilsonite.parser import (
    GilsoniteParseError,
    TypedTerm,
    parse_gilsonite,
    typed_env,
)
from repro.lang.parser import TypeParseError, parse_type
from repro.lang.types import (
    BOOL,
    U8,
    U64,
    UNIT,
    USIZE,
    AdtTy,
    ArrayTy,
    ParamTy,
    RawPtrTy,
    RefTy,
    TupleTy,
)
from repro.rustlib.linked_list import build_program
from repro.solver.sorts import LFT, LOC
from repro.solver.terms import Var


class TestTypeParser:
    def test_primitives(self):
        assert parse_type("u64") == U64
        assert parse_type("bool") == BOOL
        assert parse_type("usize") == USIZE
        assert parse_type("()") == UNIT

    def test_generic_param(self):
        assert parse_type("T") == ParamTy("T")
        assert parse_type("T", generics=()) == AdtTy("T")

    def test_adt_with_args(self):
        assert parse_type("Node<T>") == AdtTy("Node", (ParamTy("T"),))
        assert parse_type("Option<*mut Node<T>>") == AdtTy(
            "Option", (RawPtrTy(AdtTy("Node", (ParamTy("T"),))),)
        )

    def test_pointers_and_refs(self):
        assert parse_type("*mut u8") == RawPtrTy(U8)
        assert parse_type("*const u8") == RawPtrTy(U8, mutable=False)
        assert parse_type("&mut u64") == RefTy(U64, True, "'a")
        assert parse_type("&'k mut u64") == RefTy(U64, True, "'k")

    def test_tuple_and_array(self):
        assert parse_type("(u8, u64)") == TupleTy((U8, U64))
        assert parse_type("[u8; 4]") == ArrayTy(U8, 4)

    def test_errors(self):
        with pytest.raises(TypeParseError):
            parse_type("Option<")
        with pytest.raises(TypeParseError):
            parse_type("u64 extra")


@pytest.fixture(scope="module")
def env_setup():
    program, ownables = build_program()
    kappa = Var("κv", LFT)
    self_v = Var("selfv", ty_to_sort(ll.LIST, program.registry))
    repr_v = Var("reprv", ownables.repr_sort(ll.LIST))
    env = typed_env(program, ownables, kappa, self=(ll.LIST, self_v))
    env["repr"] = TypedTerm(None, repr_v)
    return program, ownables, env, kappa, self_v, repr_v


class TestAssertionParser:
    def test_fig2_linked_list_own(self, env_setup):
        """The Fig. 2 predicate body parses to dllSeg + length fact."""
        program, ownables, env, kappa, self_v, repr_v = env_setup
        a = parse_gilsonite(
            "dllSeg(self.head, None, self.tail, None, repr)"
            " * (self.len == repr.len())",
            program, ownables, env,
        )
        parts = list(iter_parts(a))
        assert isinstance(parts[0], Pred) and parts[0].name == "dllSeg"
        # Implicit leading lifetime argument.
        assert parts[0].args[0] == kappa
        assert isinstance(parts[1], Pure)

    def test_mutref_body(self, env_setup):
        """§4.2: ``<exists v> self -> v * v.own()``-style borrow body."""
        program, ownables, env, kappa, *_ = env_setup
        p = Var("pv", LOC)
        env2 = typed_env(program, ownables, kappa, self=(RefTy(U64, True), p))
        a = parse_gilsonite("<exists v: u64> self -> v * v.own(_)", program, ownables, env2)
        assert isinstance(a, Exists)
        parts = list(iter_parts(a.body))
        assert isinstance(parts[0], PointsTo)
        assert parts[0].ptr == p
        assert parts[0].ty == U64
        assert isinstance(parts[1], Pred) and parts[1].name == "own:u64"

    def test_uninit_points_to(self, env_setup):
        program, ownables, env, kappa, *_ = env_setup
        p = Var("pq", LOC)
        env2 = typed_env(program, ownables, kappa, p=(RawPtrTy(U64), p))
        a = parse_gilsonite("p -> _", program, ownables, env2)
        assert a == PointsToUninit(p, U64)

    def test_observation(self, env_setup):
        program, ownables, env, *_ = env_setup
        a = parse_gilsonite("$ repr.len() < 10 $", program, ownables, env)
        assert isinstance(a, Observation)

    def test_emp(self, env_setup):
        program, ownables, env, *_ = env_setup
        assert isinstance(parse_gilsonite("emp", program, ownables, env), Emp)

    def test_repr_sorted_binder(self, env_setup):
        program, ownables, env, *_ = env_setup
        a = parse_gilsonite(
            "<exists r: @LinkedList<T>> $ r.len() < 3 $", program, ownables, env
        )
        assert isinstance(a, Exists)
        assert str(a.vars[0].sort) == "Seq<repr:T>"

    def test_unbound_var_rejected(self, env_setup):
        program, ownables, env, *_ = env_setup
        with pytest.raises(GilsoniteParseError):
            parse_gilsonite("(nope == 3)", program, ownables, env)

    def test_bad_points_to_lhs_rejected(self, env_setup):
        program, ownables, env, *_ = env_setup
        with pytest.raises(GilsoniteParseError):
            parse_gilsonite("(3) -> 4", program, ownables, env)


class TestParsedPredicateVerifies:
    def test_linked_list_own_from_text(self):
        """Install the own predicate for LinkedList *from its textual
        Fig. 2 form* and re-verify type safety of pop_front_node: the
        textual front-end and the programmatic API agree."""
        from repro.gillian.verifier import verify_function
        from repro.gilsonite.specs import show_safety_spec
        from repro.lang.mir import Program
        from repro.rustlib.linked_list import (
            body_new,
            body_pop_front_node,
            define_dll_seg,
            define_types,
        )
        from repro.gilsonite.ownable import OwnableRegistry
        from repro.solver import Solver
        from repro.solver.sorts import SeqSort

        program = Program()
        define_types(program)
        ownables = OwnableRegistry(program)
        define_dll_seg(program, ownables)

        def list_repr(ty):
            return SeqSort(ownables.repr_sort(ty.args[0]))

        def list_build(reg, ty, kappa, self_v, repr_v):
            env = typed_env(program, reg, kappa, self=(ty, self_v))
            env["repr"] = TypedTerm(None, repr_v)
            return [
                parse_gilsonite(
                    "dllSeg(self.head, None, self.tail, None, repr)"
                    " * (self.len == repr.len())",
                    program, reg, env,
                )
            ]

        ownables.register_custom(ll.LIST, list_repr, list_build)

        def node_repr(ty):
            return ownables.repr_sort(ty.args[0])

        def node_build(reg, ty, kappa, self_v, repr_v):
            env = typed_env(program, reg, kappa, self=(ty, self_v))
            env["repr"] = TypedTerm(None, repr_v)
            return [
                parse_gilsonite("self.element.own(repr)", program, reg, env)
            ]

        ownables.register_custom(ll.NODE, node_repr, node_build)
        program.add_body(body_new())
        program.add_body(body_pop_front_node())
        solver = Solver()
        for name in ("LinkedList::new", "LinkedList::pop_front_node"):
            spec = show_safety_spec(ownables, program.bodies[name])
            r = verify_function(program, program.bodies[name], spec, solver)
            assert r.ok, [str(i) for i in r.issues]
