"""Tests for the Ownable registry: repr types and own predicates (§5.1)."""

import pytest

import repro.rustlib.linked_list as ll
from repro.gilsonite.ast import Borrow, Exists, Mode, Pred, iter_parts
from repro.gilsonite.ownable import OwnableRegistry, mutref_inv_name, own_pred_name
from repro.lang.mir import Program
from repro.lang.types import (
    BOOL,
    U8,
    U64,
    UNIT,
    USIZE,
    AdtTy,
    ParamTy,
    RefTy,
    TupleTy,
    option_ty,
)
from repro.rustlib.linked_list import build_program
from repro.solver.sorts import (
    BOOL as BOOL_SORT,
    INT,
    LOC,
    OptionSort,
    SeqSort,
    TupleSort,
    UninterpSort,
)


@pytest.fixture()
def fresh():
    program = Program()
    return program, OwnableRegistry(program)


class TestReprSorts:
    """⌊·⌋ — the representation-type function (§5.1)."""

    def test_machine_ints(self, fresh):
        _, reg = fresh
        assert reg.repr_sort(U64) == INT
        assert reg.repr_sort(USIZE) == INT

    def test_bool_unit(self, fresh):
        _, reg = fresh
        assert reg.repr_sort(BOOL) == BOOL_SORT
        assert reg.repr_sort(UNIT) == TupleSort(())

    def test_param_is_opaque(self, fresh):
        _, reg = fresh
        assert reg.repr_sort(ParamTy("T")) == UninterpSort("repr:T")

    def test_mut_ref_is_pair(self, fresh):
        # ⌊&mut T⌋ = ⌊T⌋ × ⌊T⌋ (§5.1).
        _, reg = fresh
        s = reg.repr_sort(RefTy(U64, mutable=True))
        assert s == TupleSort((INT, INT))

    def test_option(self, fresh):
        _, reg = fresh
        assert reg.repr_sort(option_ty(U64)) == OptionSort(INT)

    def test_box_is_transparent(self, fresh):
        _, reg = fresh
        from repro.lang.types import box_ty

        assert reg.repr_sort(box_ty(U64)) == INT

    def test_linked_list_is_seq(self):
        # ⌊LinkedList<T>⌋ = Seq<⌊T⌋> (§5.1).
        program, ownables = build_program()
        s = ownables.repr_sort(ll.LIST)
        assert s == SeqSort(UninterpSort("repr:T"))

    def test_unregistered_adt_rejected(self, fresh):
        program, reg = fresh
        from repro.lang.types import struct_def

        program.registry.define(struct_def("Mystery", [("a", U8)]))
        with pytest.raises(KeyError):
            reg.repr_sort(AdtTy("Mystery"))


class TestOwnPredicates:
    def test_int_own_carries_validity(self, fresh):
        _, reg = fresh
        name = reg.ensure_own(U8)
        pdef = reg.program.predicates[name]
        text = str(pdef.disjuncts[0])
        assert "255" in text  # the u8 range is part of ownership

    def test_param_own_is_abstract(self, fresh):
        # §4.2: ownership of type parameters compiles to abstract preds.
        _, reg = fresh
        name = reg.ensure_own(ParamTy("T"))
        assert reg.program.predicates[name].abstract

    def test_modes_are_in_in_out(self, fresh):
        # §7.2: (κ, self) In, repr Out — the ty_own_proph discipline.
        _, reg = fresh
        name = reg.ensure_own(option_ty(U64))
        pdef = reg.program.predicates[name]
        assert [p.mode for p in pdef.params] == [Mode.IN, Mode.IN, Mode.OUT]

    def test_mutref_own_contains_borrow_and_vo(self, fresh):
        _, reg = fresh
        name = reg.ensure_own(RefTy(U64, mutable=True))
        pdef = reg.program.predicates[name]
        [body] = pdef.disjuncts
        assert isinstance(body, Exists)
        parts = list(iter_parts(body.body))
        assert any(isinstance(p, Borrow) for p in parts)

    def test_mutref_inv_is_guarded(self, fresh):
        _, reg = fresh
        reg.ensure_own(RefTy(U64, mutable=True))
        inv = reg.program.predicates[mutref_inv_name(U64)]
        assert inv.guard == "κ"

    def test_idempotent(self, fresh):
        _, reg = fresh
        a = reg.ensure_own(U64)
        b = reg.ensure_own(U64)
        assert a == b

    def test_recursive_type_terminates(self):
        # Node<T> refers to Node<T> through pointers; ensure_own must
        # not loop.
        program, ownables = build_program()
        name = ownables.ensure_own(ll.NODE)
        assert name in program.predicates
