"""Unit tests for the freezing and extraction lemmas (§4.3).

The flow mirrors front_mut: the state holds the *folded* mutable-
reference ownership (as produced by a `#[show_safety]` precondition)
plus a lifetime token; the freeze lemma unfolds it, learns the frozen
existentials, and swaps the borrow; the extraction lemma then needs
the persistent fact ``head = Some(_)`` (established by the branch on
the loaded head) to exchange the list borrow for an element borrow.
"""

import pytest

import repro.rustlib.linked_list as ll
from repro.core.state import RustState, RustStateModel
from repro.gillian.matcher import TacticError
from repro.gillian.produce import produce
from repro.gilsonite.ast import Pred
from repro.gilsonite.ownable import mutref_inv_name, own_pred_name
from repro.rustlib.linked_list import build_program
from repro.solver import Solver
from repro.solver.sorts import LFT, LOC
from repro.solver.terms import Var, eq, fresh_var, is_some, none, not_, reallit


@pytest.fixture()
def setup():
    program, ownables = build_program()
    solver = Solver()
    model = RustStateModel(program, solver)
    kappa = fresh_var("κ", LFT)
    self_ptr = fresh_var("self", LOC)
    m = fresh_var("m", ownables.repr_sort(ll.MUT_LIST))
    own_name = ownables.ensure_own(ll.MUT_LIST)
    state = RustState(lifetimes=RustState().lifetimes.new_lifetime(kappa))
    [state] = produce(model, state, Pred(own_name, (kappa, self_ptr, m)))
    return program, ownables, model, state, kappa, self_ptr


def frozen_head(state):
    [b] = [b for b in state.borrows.borrows if b.pred == "ll_frozen"]
    return b, b.args[3 - 1]  # args = (self, x, h, t, l)


class TestFreeze:
    def test_freeze_swaps_the_borrow(self, setup):
        program, ownables, model, state, kappa, self_ptr = setup
        freeze = program.lemmas["freeze_linked_list"]
        outs = freeze.apply(model, state, [self_ptr])
        assert outs
        s = outs[0]
        assert [b for b in s.borrows.borrows if b.pred == "ll_frozen"]
        assert not [
            b for b in s.borrows.borrows if b.pred == mutref_inv_name(ll.LIST)
        ]
        assert not s.borrows.tokens  # nothing left open

    def test_freeze_preserves_token(self, setup):
        program, ownables, model, state, kappa, self_ptr = setup
        freeze = program.lemmas["freeze_linked_list"]
        [s] = freeze.apply(model, state, [self_ptr])
        held = s.lifetimes.held_fraction(kappa, model.solver, s.pc)
        assert model.solver.entails(s.pc, eq(held, reallit(1)))

    def test_frozen_length_invariant_learned(self, setup):
        program, ownables, model, state, kappa, self_ptr = setup
        freeze = program.lemmas["freeze_linked_list"]
        [s] = freeze.apply(model, state, [self_ptr])
        from repro.solver.terms import intlit, le

        b, _ = frozen_head(s)
        length = b.args[4]
        assert model.solver.entails(s.pc, le(intlit(0), length))

    def test_freeze_without_borrow_fails(self, setup):
        program, ownables, model, state, kappa, self_ptr = setup
        freeze = program.lemmas["freeze_linked_list"]
        with pytest.raises(TacticError):
            freeze.apply(model, state, [fresh_var("other", LOC)])


class TestExtract:
    def _frozen_with_fact(self, setup, empty: bool):
        program, ownables, model, state, kappa, self_ptr = setup
        freeze = program.lemmas["freeze_linked_list"]
        [s] = freeze.apply(model, state, [self_ptr])
        b, h = frozen_head(s)
        fact = eq(h, none(LOC)) if empty else is_some(h)
        return program, model, s.assume((fact,)), self_ptr, kappa

    def test_extract_nonempty(self, setup):
        program, model, s, self_ptr, kappa = self._frozen_with_fact(setup, False)
        extract = program.lemmas["extract_head_element"]
        outs = extract.apply(model, s, [self_ptr])
        assert outs
        s2 = outs[0]
        assert not [b for b in s2.borrows.borrows if b.pred == "ll_frozen"]
        elem = [b for b in s2.borrows.borrows if b.pred == mutref_inv_name(ll.T)]
        assert len(elem) == 1
        # The new prophecy has its value observer in the state.
        x_elem = elem[0].args[1]
        assert s2.proph.entries[x_elem].vo
        assert not s2.proph.entries[x_elem].pc_

    def test_extract_empty_fails(self, setup):
        """The persistent fact F (head != None) is required (§4.3)."""
        program, model, s, self_ptr, kappa = self._frozen_with_fact(setup, True)
        extract = program.lemmas["extract_head_element"]
        with pytest.raises(TacticError, match="head"):
            extract.apply(model, s, [self_ptr])

    def test_extract_undecided_emptiness_fails(self, setup):
        """Without the branch fact the hypothesis cannot be shown."""
        program, ownables, model, state, kappa, self_ptr = setup
        freeze = program.lemmas["freeze_linked_list"]
        [s] = freeze.apply(model, state, [self_ptr])
        extract = program.lemmas["extract_head_element"]
        with pytest.raises(TacticError):
            extract.apply(model, s, [self_ptr])

    def test_extract_preserves_token(self, setup):
        program, model, s, self_ptr, kappa = self._frozen_with_fact(setup, False)
        before = s.lifetimes.held_fraction(kappa, model.solver, s.pc)
        extract = program.lemmas["extract_head_element"]
        [s2] = extract.apply(model, s, [self_ptr])
        after = s2.lifetimes.held_fraction(kappa, model.solver, s2.pc)
        assert model.solver.entails(s2.pc, eq(before, after))
