"""Hybrid pipeline over the user-defined RawStack: the same split
(safe client via Creusot axioms / unsafe impl via Gillian-Rust) works
for any crate, not just the std LinkedList."""

import pytest

import repro.rustlib.raw_stack as rs
from repro.hybrid.pipeline import HybridVerifier
from repro.lang.builder import BodyBuilder
from repro.lang.types import UNIT, option_ty
from repro.rustlib.raw_stack import RAW_STACK_CONTRACTS, build_program
from repro.solver import Solver


def client_body():
    """Safe LIFO client over the stack."""
    fn = BodyBuilder(
        "client::lifo", params=[("a", rs.T), ("b", rs.T)], ret=option_ty(rs.T),
        generics=("T",), is_safe=True,
    )
    bbs = [fn.block() if i == 0 else fn.block(f"bb{i}") for i in range(5)]
    s = fn.local("s", rs.STACK)
    bbs[0].call(s, "RawStack::new", [], bbs[1])
    for i, arg in ((1, "a"), (2, "b")):
        r = fn.local(f"r{i}", rs.MUT_STACK)
        bbs[i].assign(r, fn.ref("s", mutable=True))
        u = fn.local(f"u{i}", UNIT)
        bbs[i].call(u, "RawStack::push", [fn.move(r), fn.copy(arg)], bbs[i + 1])
    r3 = fn.local("r3", rs.MUT_STACK)
    bbs[3].assign(r3, fn.ref("s", mutable=True))
    top = fn.local("top", option_ty(rs.T))
    bbs[3].call(top, "RawStack::pop", [fn.move(r3)], bbs[4])
    bbs[4].ghost_assert("match top { None => false, Some(v) => v == b }")
    bbs[4].assign(fn.ret_place, fn.copy("top"))
    bbs[4].ret()
    return fn.finish()


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    program.add_body(client_body())
    return program, ownables


def test_hybrid_over_user_crate(env):
    program, ownables = env
    hv = HybridVerifier(
        program,
        ownables,
        RAW_STACK_CONTRACTS,
        solver=Solver(),
        manual_pure_pre={"RawStack::push": ["self@.len() < usize::MAX"]},
    )
    report = hv.run(
        ["client::lifo", "RawStack::new", "RawStack::push", "RawStack::pop"]
    )
    assert report.ok, report.render()
    halves = {e.half for e in report.entries}
    assert halves == {"creusot", "gillian-rust"}
