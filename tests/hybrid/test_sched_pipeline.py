"""The scheduler threaded through the pipeline: a stealing ``jobs=N``
run is bit-identical to ``jobs=1`` (and to the static pool), the cost
model learns from ``verify`` spans and persists next to the store, and
a warm memtier answers repeat runs with zero disk reads."""

import json

import pytest

from repro import faultinject
from repro.gilsonite.ownable import OwnableRegistry
from repro.hybrid.pipeline import HybridVerifier
from repro.lang.mir import Program
from repro.parallel import fork_available
from repro.sched import GLOBAL_COSTS, COSTS_FILENAME, costs_path
from repro.store import ProofStore, reset_store_stats

from tests.robustness.conftest import FAST_FNS, _fast_body
from tests.hybrid.test_parallel import _fingerprint

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="scheduler tests fork worker processes"
)


def fresh_env():
    program = Program()
    for n in FAST_FNS:
        program.add_body(_fast_body(n))
    return program, OwnableRegistry(program)


@pytest.fixture(autouse=True)
def clean_state():
    reset_store_stats()
    faultinject.clear()
    GLOBAL_COSTS.clear()
    yield
    faultinject.clear()
    reset_store_stats()
    GLOBAL_COSTS.clear()


class TestEquivalence:
    def test_steal_jobs4_matches_serial(self):
        env = fresh_env()
        serial = HybridVerifier(*env, {}).run(FAST_FNS, jobs=1)
        stealing = HybridVerifier(*fresh_env(), {}).run(FAST_FNS, jobs=4)
        assert _fingerprint(stealing) == _fingerprint(serial)
        assert stealing.ok

    def test_steal_matches_static(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "static")
        static = HybridVerifier(*fresh_env(), {}).run(FAST_FNS, jobs=4)
        monkeypatch.setenv("REPRO_SCHED", "steal")
        stealing = HybridVerifier(*fresh_env(), {}).run(FAST_FNS, jobs=4)
        assert _fingerprint(stealing) == _fingerprint(static)


class TestCostModel:
    def test_serial_run_observes_every_function(self):
        report = HybridVerifier(*fresh_env(), {}).run(FAST_FNS, jobs=1)
        assert report.ok
        for fn in FAST_FNS:
            assert GLOBAL_COSTS.cost(fn) is not None

    def test_parallel_run_learns_through_worker_deltas(self):
        # Workers observe in their own process; the deltas must carry
        # the observations home to the parent's model.
        report = HybridVerifier(*fresh_env(), {}).run(FAST_FNS, jobs=2)
        assert report.ok
        for fn in FAST_FNS:
            assert GLOBAL_COSTS.cost(fn) is not None

    def test_costs_persist_next_to_the_store(self, tmp_path):
        store = ProofStore(tmp_path)
        HybridVerifier(*fresh_env(), {}, store=store).run(FAST_FNS, jobs=1)
        path = tmp_path / COSTS_FILENAME
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert set(FAST_FNS) <= set(doc["costs"])

    def test_cost_of_prefers_learned_over_estimate(self):
        env = fresh_env()
        hv = HybridVerifier(*env, {})
        estimate = hv._cost_of("fn0")
        GLOBAL_COSTS.observe("fn0", 42.0)
        assert hv._cost_of("fn0") == pytest.approx(42.0)
        assert estimate != pytest.approx(42.0)

    def test_cost_of_estimates_unseen_functions(self):
        hv = HybridVerifier(*fresh_env(), {})
        assert hv._cost_of("fn0") > 0

    def test_next_run_loads_persisted_costs(self, tmp_path):
        store = ProofStore(tmp_path)
        HybridVerifier(*fresh_env(), {}, store=store).run(FAST_FNS, jobs=1)
        GLOBAL_COSTS.clear()
        # A later process (simulated by the cleared model) sees the
        # history as soon as it runs against the same store root.
        HybridVerifier(
            *fresh_env(), {}, store=ProofStore(tmp_path)
        ).run([FAST_FNS[0]], jobs=1)
        assert GLOBAL_COSTS.cost(FAST_FNS[-1]) is not None
        assert costs_path(tmp_path).endswith(COSTS_FILENAME)


class TestWarmStore:
    def test_second_run_is_zero_disk_reads(self, tmp_path):
        env = fresh_env()
        store = ProofStore(tmp_path, mem=64, write_behind=True)
        first = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
        assert first.ok
        assert store.pending() == 0  # end_run flushed the buffer
        second = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
        assert _fingerprint(second) == _fingerprint(first)
        assert second.store_stats["hits"] == len(FAST_FNS)
        assert second.store_stats["mem_hits"] == len(FAST_FNS)
        assert second.store_stats["disk_reads"] == 0

    def test_cold_reopen_reads_disk_once_then_memory(self, tmp_path):
        env = fresh_env()
        HybridVerifier(
            *env, {}, store=ProofStore(tmp_path, mem=64, write_behind=True)
        ).run(FAST_FNS, jobs=1)
        store = ProofStore(tmp_path, mem=64)
        warm1 = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
        assert warm1.store_stats["disk_reads"] == len(FAST_FNS)
        warm2 = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
        assert warm2.store_stats["disk_reads"] == 0
        assert warm2.store_stats["mem_hits"] == len(FAST_FNS)


class TestRender:
    def test_verbose_render_shows_scheduler_counters(self):
        report = HybridVerifier(*fresh_env(), {}).run(FAST_FNS, jobs=2)
        rendered = report.render(verbose=True)
        assert "-- sched:" in rendered
        assert "queue wait" in rendered
        assert "steals --" in report.render()  # pool line, non-verbose

    def test_store_line_splits_mem_and_disk(self, tmp_path):
        env = fresh_env()
        store = ProofStore(tmp_path, mem=64)
        HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
        warm = HybridVerifier(*env, {}, store=store).run(FAST_FNS, jobs=1)
        line = [
            l for l in warm.render().splitlines() if l.startswith("-- store:")
        ][0]
        assert f"{len(FAST_FNS)} mem / 0 disk hits" in line
