"""jobs=N must be a pure throughput knob: the ``HybridReport`` it
produces has to match the serial ``jobs=1`` path entry for entry —
including when a worker is killed or raises mid-verification (the
fault-tolerance layer retries or degrades just the affected entry)."""

import pytest

from repro import faultinject
from repro.hybrid.pipeline import HybridVerifier
from repro.parallel import default_jobs, fork_available
from repro.rustlib.contracts import LINKED_LIST_CONTRACTS, MANUAL_PURE_PRECONDITIONS
from repro.rustlib.linked_list import build_program
from repro.rustlib.specs import install_callee_specs

from tests.hybrid.test_pipeline import client_body

FUNCTIONS = [
    "client::push_pop",
    "LinkedList::new",
    "LinkedList::push_front_node",
    "LinkedList::pop_front_node",
    "LinkedList::front_mut",
]


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    install_callee_specs(program, ownables)
    program.add_body(client_body())
    return program, ownables


def _run(env, jobs):
    program, ownables = env
    hv = HybridVerifier(
        program, ownables, LINKED_LIST_CONTRACTS,
        manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
    )
    return hv.run(FUNCTIONS, jobs=jobs)


def _fingerprint(report):
    """Everything observable about a report except wall-clock."""
    return [
        (e.function, e.half, e.ok, [str(i) for i in _issues(e)])
        for e in report.entries
    ]


def _issues(entry):
    detail = entry.detail
    return getattr(detail, "issues", []) or []


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestParallelEquivalence:
    def test_jobs4_matches_jobs1(self, env):
        serial = _run(env, jobs=1)
        parallel = _run(env, jobs=4)
        assert _fingerprint(parallel) == _fingerprint(serial)
        assert parallel.ok == serial.ok
        assert serial.ok, serial.render()

    def test_render_order_is_serial_order(self, env):
        report = _run(env, jobs=4)
        assert [e.function for e in report.entries] == [
            "client::push_pop",
            "LinkedList::new",
            "LinkedList::new",  # type safety + functional halves
            "LinkedList::push_front_node",
            "LinkedList::push_front_node",
            "LinkedList::pop_front_node",
            "LinkedList::pop_front_node",
            "LinkedList::front_mut",
        ]


def test_jobs_none_uses_default(env, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert default_jobs() == 2
    report = _run(env, jobs=None)
    assert report.ok, report.render()


def test_invalid_repro_jobs_warns(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "several")
    with pytest.warns(RuntimeWarning, match="'several'"):
        default_jobs()


@pytest.fixture(scope="module")
def serial_report(env):
    report = _run(env, jobs=1)
    assert report.ok, report.render()
    return report


@pytest.fixture()
def clean_faults():
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestCrashIsolation:
    """A dying or raising worker must cost at most its own entry: the
    report stays complete and every other entry matches the serial run."""

    def test_killed_worker_recovers_bit_identical(
        self, env, serial_report, clean_faults
    ):
        # os._exit(1) in the worker verifying pop_front_node: the pool
        # breaks, the lost items re-run serially in the parent (where
        # the crash rule never fires), and the report is identical.
        faultinject.install("parallel.worker@pop_front_node:crash")
        report = _run(env, jobs=4)
        assert _fingerprint(report) == _fingerprint(serial_report)
        assert report.ok
        assert report.status == "verified"

    def test_raising_worker_degrades_only_its_entry(
        self, env, serial_report, clean_faults
    ):
        faultinject.install("verifier.function@front_mut:raise:WorkerCrashed")
        report = _run(env, jobs=4)
        affected = [e for e in report.entries if "front_mut" in e.function]
        assert len(affected) == 1
        assert affected[0].status == "crashed"
        assert not affected[0].ok
        unaffected = [
            f for f in _fingerprint(report) if "front_mut" not in f[0]
        ]
        expected = [
            f for f in _fingerprint(serial_report) if "front_mut" not in f[0]
        ]
        assert unaffected == expected
        assert report.status == "crashed"
