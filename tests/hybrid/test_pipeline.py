"""Tests for the hybrid pipeline (§2.1): safe half + unsafe half,
agreeing on the same Pearlite contracts."""

import pytest

import repro.rustlib.linked_list as ll
from repro.hybrid.pipeline import HybridVerifier
from repro.lang.builder import BodyBuilder
from repro.lang.types import UNIT, option_ty
from repro.rustlib.contracts import LINKED_LIST_CONTRACTS, MANUAL_PURE_PRECONDITIONS
from repro.rustlib.linked_list import LIST, MUT_LIST, T, build_program
from repro.rustlib.specs import install_callee_specs
from repro.solver import Solver


def client_body():
    fn = BodyBuilder(
        "client::push_pop", params=[("x", T)], ret=option_ty(T),
        generics=("T",), is_safe=True,
    )
    bb0 = fn.block()
    bb1 = fn.block("bb1")
    bb2 = fn.block("bb2")
    bb3 = fn.block("bb3")
    l = fn.local("l", LIST)
    bb0.call(l, "LinkedList::new", [], bb1)
    r1 = fn.local("r1", MUT_LIST)
    bb1.assign(r1, fn.ref("l", mutable=True))
    u1 = fn.local("u1", UNIT)
    bb1.call(u1, "LinkedList::push_front", [fn.move(r1), fn.copy("x")], bb2)
    r2 = fn.local("r2", MUT_LIST)
    bb2.assign(r2, fn.ref("l", mutable=True))
    o = fn.local("o", option_ty(T))
    bb2.call(o, "LinkedList::pop_front", [fn.move(r2)], bb3)
    bb3.ghost_assert("match o { None => false, Some(v) => v == x }")
    bb3.assign(fn.ret_place, fn.copy("o"))
    bb3.ret()
    return fn.finish()


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    install_callee_specs(program, ownables)
    program.add_body(client_body())
    return program, ownables


class TestDispatch:
    def test_safe_body_goes_to_creusot(self, env):
        program, ownables = env
        hv = HybridVerifier(
            program, ownables, LINKED_LIST_CONTRACTS,
            manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
        )
        entries = hv.verify_one("client::push_pop")
        assert len(entries) == 1
        assert entries[0].half == "creusot"
        assert entries[0].ok, str(entries[0].detail.issues)

    def test_unsafe_body_goes_to_gillian(self, env):
        program, ownables = env
        hv = HybridVerifier(
            program, ownables, LINKED_LIST_CONTRACTS,
            manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
        )
        entries = hv.verify_one("LinkedList::pop_front_node")
        halves = {e.half for e in entries}
        assert halves == {"gillian-rust"}
        # Both the type-safety and the functional (Pearlite) specs run.
        assert len(entries) == 2
        assert all(e.ok for e in entries), [str(e) for e in entries]

    def test_end_to_end_report(self, env):
        program, ownables = env
        hv = HybridVerifier(
            program, ownables, LINKED_LIST_CONTRACTS,
            manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
        )
        report = hv.run(
            [
                "client::push_pop",
                "LinkedList::new",
                "LinkedList::push_front_node",
                "LinkedList::pop_front_node",
            ]
        )
        assert report.ok, report.render()
        rendered = report.render()
        assert "creusot" in rendered
        assert "gillian-rust" in rendered
        assert "ALL VERIFIED" in rendered

    def test_front_mut_type_safety_only(self, env):
        # §7.1: front_mut has no verifiable functional contract yet.
        program, ownables = env
        hv = HybridVerifier(
            program, ownables, LINKED_LIST_CONTRACTS,
            manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
        )
        entries = hv.verify_one("LinkedList::front_mut")
        assert len(entries) == 1  # only the type-safety run
        assert entries[0].ok

    def test_auto_extract_mode(self, env):
        # With auto-extraction, the manual pure copies are unnecessary.
        program, ownables = env
        hv = HybridVerifier(
            program, ownables, LINKED_LIST_CONTRACTS, auto_extract=True
        )
        entries = hv.verify_one("LinkedList::push_front_node")
        assert all(e.ok for e in entries), [str(e) for e in entries]
