"""End-to-end strategy equivalence through the hybrid pipeline.

The differential suite (tests/solver/test_strategies.py) checks the
invariant per query; this file checks it per *pipeline run*: every
strategy, plus the learned ``auto`` mode, must produce the same
``HybridReport`` verdicts — serial and under ``jobs=2`` — and the
report must carry the per-strategy breakdown and selector state.
"""

import pytest

from repro.hybrid.pipeline import HybridVerifier
from repro.parallel import fork_available
from repro.rustlib.contracts import LINKED_LIST_CONTRACTS, MANUAL_PURE_PRECONDITIONS
from repro.rustlib.linked_list import build_program
from repro.rustlib.specs import install_callee_specs
from repro.solver import Solver
from repro.solver.portfolio import StrategySelector, selector_path
from repro.solver.strategies import STRATEGIES
from repro.store import ProofStore

from tests.hybrid.test_pipeline import client_body

FUNCTIONS = [
    "client::push_pop",
    "LinkedList::new",
    "LinkedList::push_front_node",
]


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    install_callee_specs(program, ownables)
    program.add_body(client_body())
    return program, ownables


def _run(env, jobs=1, **hv_kwargs):
    program, ownables = env
    hv = HybridVerifier(
        program, ownables, LINKED_LIST_CONTRACTS,
        manual_pure_pre=MANUAL_PURE_PRECONDITIONS, **hv_kwargs,
    )
    return hv, hv.run(FUNCTIONS, jobs=jobs)


def _fingerprint(report):
    return [(e.function, e.half, e.ok) for e in report.entries]


class TestVerdictEquivalence:
    @pytest.fixture(scope="class")
    def baseline_fp(self, env):
        _, report = _run(env, strategy="baseline")
        assert report.status == "verified"
        return _fingerprint(report)

    @pytest.mark.parametrize("name", list(STRATEGIES))
    def test_each_strategy_matches_baseline(self, env, baseline_fp, name):
        _, report = _run(env, strategy=name)
        assert _fingerprint(report) == baseline_fp

    def test_auto_matches_baseline(self, env, baseline_fp):
        solver = Solver(strategy="auto", selector=StrategySelector())
        _, report = _run(env, solver=solver)
        assert _fingerprint(report) == baseline_fp

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_auto_matches_baseline_jobs2(self, env, baseline_fp):
        solver = Solver(strategy="auto", selector=StrategySelector())
        _, report = _run(env, jobs=2, solver=solver)
        assert _fingerprint(report) == baseline_fp


class TestReportPlumbing:
    def test_strategy_stats_in_report(self, env):
        _, report = _run(env, strategy="inverted")
        assert report.strategy_stats.get("inverted", {}).get("queries", 0) > 0
        assert "== solver strategies ==" in report.render(verbose=True)

    def test_auto_report_carries_selector(self, env):
        solver = Solver(strategy="auto", selector=StrategySelector())
        _, report = _run(env, solver=solver)
        sel = report.strategy_stats.get("selector")
        assert sel and sel["decisions"] > 0 and sel["buckets"] > 0

    def test_env_knob_reaches_solver(self, env, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_STRATEGY", "lazy")
        program, ownables = env
        hv = HybridVerifier(
            program, ownables, LINKED_LIST_CONTRACTS,
            manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
        )
        assert hv.solver.strategy == "lazy"

    def test_strategy_argument_validated(self, env):
        program, ownables = env
        with pytest.raises(KeyError):
            HybridVerifier(
                program, ownables, LINKED_LIST_CONTRACTS,
                manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
                strategy="no_such",
            )


class TestSelectorPersistence:
    def test_selector_state_persists_with_store(self, env, tmp_path):
        selector = StrategySelector()
        solver = Solver(strategy="auto", selector=selector)
        _, report = _run(
            env, solver=solver, store=ProofStore(tmp_path / "store")
        )
        assert report.status == "verified"
        path = selector_path(tmp_path / "store")
        fresh = StrategySelector()
        assert fresh.load(path)
        assert fresh._buckets  # learned state reached the disk

    def test_warm_run_loads_selector_once(self, env, tmp_path):
        store_root = tmp_path / "store"
        selector = StrategySelector()
        solver = Solver(strategy="auto", selector=selector)
        _run(env, solver=solver, store=ProofStore(store_root))
        before = {
            k: {s: tuple(r) for s, r in b.items()}
            for k, b in selector._buckets.items()
        }
        # Second run over a warm store: every proof is a store hit, no
        # queries run, and the once-guard must not double the counts.
        _run(env, solver=solver, store=ProofStore(store_root))
        after = {
            k: {s: tuple(r) for s, r in b.items()}
            for k, b in selector._buckets.items()
        }
        assert after == before
