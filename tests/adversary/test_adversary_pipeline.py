"""End-to-end adversary integration: cross_check over real runs, the
report model, fault-boundary degradation, and the pipeline knobs."""

import pytest

from repro import faultinject
from repro.adversary import AdversaryConfig, cross_check
from repro.adversary.report import AdversaryEntry, AdversaryReport
from repro.hybrid.pipeline import HybridEntry, HybridReport, HybridVerifier
from repro.rustlib.contracts import (
    LINKED_LIST_CONTRACTS,
    MANUAL_PURE_PRECONDITIONS,
)

CORPUS = [
    "LinkedList::new",
    "LinkedList::push_front_node",
    "LinkedList::pop_front_node",
    "LinkedList::front_mut",
]


@pytest.fixture(scope="module")
def ll_verifier(ll_env):
    program, ownables = ll_env
    hv = HybridVerifier(
        program,
        ownables,
        LINKED_LIST_CONTRACTS,
        manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
    )
    hv.store = None
    return hv


@pytest.fixture(scope="module")
def verified_run(ll_verifier):
    report = ll_verifier.run(CORPUS)
    assert report.ok, report.render()
    return report


class TestCrossCheck:
    def test_all_confirmed_on_corpus(self, ll_verifier, verified_run):
        adv = cross_check(ll_verifier, verified_run, AdversaryConfig())
        assert adv.ok, adv.render()
        assert adv.status == "confirmed"
        assert {e.function for e in adv.entries} == set(CORPUS)
        for e in adv.entries:
            assert e.status == "confirmed", str(e)
            # Every verified function must be killed by some mutant.
            assert "killed by" in e.mutation, str(e)

    def test_fault_in_replay_degrades(self, ll_verifier, verified_run):
        faultinject.install("adversary.replay:raise")
        adv = cross_check(ll_verifier, verified_run, AdversaryConfig())
        assert not adv.ok
        assert adv.status == "cross_check_failed"
        assert all(e.status == "cross_check_failed" for e in adv.entries)
        assert any("fault injected" in e.replay for e in adv.entries)

    def test_fault_in_mutate_degrades(self, ll_verifier, verified_run):
        # The rule grammar splits on ":", so the match substring cannot
        # contain the path separator — a function-name fragment works.
        faultinject.install("adversary.mutate@front_mut:raise")
        adv = cross_check(ll_verifier, verified_run, AdversaryConfig())
        by_fn = {e.function: e for e in adv.entries}
        assert by_fn["LinkedList::front_mut"].status == "cross_check_failed"
        assert by_fn["LinkedList::new"].status == "confirmed"

    def test_fault_in_diff_degrades(self, ll_verifier, verified_run):
        faultinject.install("adversary.diff:raise")
        adv = cross_check(ll_verifier, verified_run, AdversaryConfig())
        assert adv.status == "cross_check_failed"

    def test_deadline_leaves_unchecked(self, ll_verifier, verified_run):
        adv = cross_check(
            ll_verifier, verified_run, AdversaryConfig(deadline=0.0)
        )
        # Nothing crashed; everything left over is reported unchecked.
        assert all(e.status == "unchecked" for e in adv.entries)
        assert adv.ok

    def test_non_checkable_statuses_skipped(self, ll_verifier):
        report = HybridReport(
            entries=[
                HybridEntry("f", "creusot", False, None, status="timeout"),
                HybridEntry("g", "creusot", False, None, status="crashed"),
            ]
        )
        adv = cross_check(ll_verifier, report, AdversaryConfig())
        assert all(e.status == "unchecked" for e in adv.entries)


class TestPipelineIntegration:
    def test_run_verify_verdicts_flag(self, ll_verifier):
        report = ll_verifier.run(["LinkedList::new"], verify_verdicts=True)
        assert report.adversary is not None
        assert report.ok
        assert report.status == "verified"
        assert "adversary cross-check" in report.render()

    def test_env_knob(self, ll_verifier, monkeypatch):
        monkeypatch.setenv("REPRO_ADVERSARY", "1")
        report = ll_verifier.run(["LinkedList::new"])
        assert report.adversary is not None
        monkeypatch.delenv("REPRO_ADVERSARY")
        report = ll_verifier.run(["LinkedList::new"])
        assert report.adversary is None

    def test_injected_fault_never_crashes_run(self, ll_verifier, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "adversary.replay:raise")
        faultinject.reload_env()
        report = ll_verifier.run(["LinkedList::new"], verify_verdicts=True)
        assert report.adversary is not None
        assert not report.ok
        assert report.status == "cross_check_failed"
        assert report.adversary.entries[0].status == "cross_check_failed"

    def test_internal_error_contained(self, ll_verifier, monkeypatch):
        """Even the orchestrator itself dying yields a report."""
        import repro.adversary as adv_mod

        def boom(*a, **k):
            raise RuntimeError("orchestrator bug")

        monkeypatch.setattr(adv_mod, "cross_check", boom)
        report = ll_verifier.run(["LinkedList::new"], verify_verdicts=True)
        assert report.adversary is not None
        assert report.adversary.internal_error
        assert "orchestrator bug" in report.adversary.internal_error
        assert report.status == "cross_check_failed"
        assert not report.ok


class TestReportModel:
    def test_severity_ordering(self):
        r = AdversaryReport(
            entries=[
                AdversaryEntry("a", "confirmed"),
                AdversaryEntry("b", "unchecked"),
            ]
        )
        assert r.status == "unchecked" and r.ok
        r.entries.append(AdversaryEntry("c", "suspect"))
        assert r.status == "suspect" and not r.ok
        r.entries.append(AdversaryEntry("d", "cross_check_failed"))
        assert r.status == "cross_check_failed"

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError):
            AdversaryEntry("f", "fine")

    def test_hybrid_status_demotion(self):
        """Entry-level severity outranks adversary demotion; a clean
        entry set is demoted by suspect/cross_check_failed."""
        entries = [HybridEntry("f", "creusot", True, None)]
        r = HybridReport(entries=list(entries))
        r.adversary = AdversaryReport(entries=[AdversaryEntry("f", "suspect")])
        assert r.status == "suspect"
        assert not r.ok
        r.adversary = AdversaryReport(
            entries=[AdversaryEntry("f", "cross_check_failed")]
        )
        assert r.status == "cross_check_failed"
        # An entry-level failure still wins over the adversary status.
        r.entries.append(
            HybridEntry("g", "creusot", False, None, status="crashed")
        )
        assert r.status == "crashed"
        # Unchecked/confirmed never demote.
        r2 = HybridReport(entries=list(entries))
        r2.adversary = AdversaryReport(
            entries=[AdversaryEntry("f", "unchecked")]
        )
        assert r2.status == "verified"
        assert r2.ok

    def test_mixed_status_render(self):
        r = HybridReport(
            entries=[
                HybridEntry("f", "creusot", True, None),
                HybridEntry("g", "gillian-rust", False, None, status="timeout"),
            ]
        )
        r.adversary = AdversaryReport(
            entries=[
                AdversaryEntry("f", "confirmed", replay="2 runs clean"),
                AdversaryEntry("g", "unchecked", replay="not verified"),
                AdversaryEntry("h", "suspect", mutation="no mutant refuted"),
                AdversaryEntry(
                    "i", "cross_check_failed", diff="FLIP: verdicts differ"
                ),
            ]
        )
        text = r.render()
        assert "1 verified" in text and "1 timeout" in text
        assert "adversary cross-check" in text
        assert "1 confirmed" in text and "1 suspect" in text
        assert "1 cross_check_failed" in text
        assert "NOT OK" in text

    def test_internal_error_render(self):
        r = AdversaryReport(internal_error="boom")
        assert not r.ok
        assert r.status == "cross_check_failed"
        assert "adversary layer failed: boom" in r.render()
