"""Shared fixtures for the adversary suite."""

import pytest

from repro import faultinject


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """Every test starts and ends with a clean fault table."""
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.fixture(scope="module")
def ll_env():
    """The real LinkedList corpus (module-scoped: building the program
    is cheap, but sharing it keeps the suite tidy)."""
    from repro.rustlib.linked_list import build_program
    from repro.rustlib.specs import install_callee_specs

    program, ownables = build_program()
    install_callee_specs(program, ownables)
    return program, ownables
