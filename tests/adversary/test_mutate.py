"""Mutation probes: deterministic mutant generation, the shared-state
safety of mutant programs, and kill detection via re-verification."""

import pytest

from repro.adversary.mutate import (
    Mutant,
    mutant_program,
    mutants_of,
    probe_function,
)
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import BOOL, U64, option_ty


def _simple_body():
    fn = BodyBuilder("f", params=[("x", U64)], ret=U64)
    bb = fn.block()
    t = fn.local("t", U64)
    bb.assign(t, fn.binop("add", fn.copy("x"), fn.const_int(1, U64)))
    bb.assign(fn.ret_place, fn.copy(t))
    bb.ret()
    return fn.finish()


class TestMutantGeneration:
    def test_deterministic(self, ll_env):
        program, _ = ll_env
        body = program.bodies["LinkedList::push_front_node"]
        a = [m.desc for m in mutants_of(body, program.registry)]
        b = [m.desc for m in mutants_of(body, program.registry)]
        assert a == b
        assert len(a) > 3

    def test_priority_order(self):
        """Binop flips come before dropped statements."""
        prog = Program()
        body = _simple_body()
        descs = [m.desc for m in mutants_of(body, prog.registry)]
        flip = next(i for i, d in enumerate(descs) if "add -> sub" in d)
        drop = next(i for i, d in enumerate(descs) if "dropped" in d)
        assert flip < drop

    def test_original_body_untouched(self):
        prog = Program()
        body = _simple_body()
        prog.add_body(body)
        for m in mutants_of(body, prog.registry):
            prog2 = mutant_program(prog, "f", m.body)
            assert prog2.bodies["f"] is m.body
            assert prog.bodies["f"] is body  # never mutated in place
        # Shared registries, fresh bodies dict.
        prog2 = mutant_program(prog, "f", body)
        assert prog2.registry is prog.registry
        assert prog2.bodies is not prog.bodies

    def test_return_tweaks_by_type(self):
        for ret, marker in (
            (U64, "result + 1"),
            (BOOL, "!result"),
            (option_ty(U64), "result = None"),
        ):
            fn = BodyBuilder("g", params=[("x", U64)], ret=ret)
            bb = fn.block()
            if ret is U64:
                bb.assign(fn.ret_place, fn.copy("x"))
            elif ret is BOOL:
                bb.assign(fn.ret_place, fn.const_bool(True))
            else:
                bb.assign(fn.ret_place, fn.aggregate(ret, [fn.copy("x")], variant=1))
            bb.ret()
            descs = [m.desc for m in mutants_of(fn.finish(), Program().registry)]
            assert any(marker in d for d in descs), (marker, descs)


class TestProbe:
    @pytest.fixture(scope="class")
    def ll_verifier(self, ll_env):
        from repro.hybrid.pipeline import HybridVerifier
        from repro.rustlib.contracts import (
            LINKED_LIST_CONTRACTS,
            MANUAL_PURE_PRECONDITIONS,
        )

        program, ownables = ll_env
        hv = HybridVerifier(
            program,
            ownables,
            LINKED_LIST_CONTRACTS,
            manual_pure_pre=MANUAL_PURE_PRECONDITIONS,
        )
        hv.store = None
        return hv

    def test_kills_on_real_spec(self, ll_verifier):
        budget = ll_verifier.budget.capped(
            deadline=5.0, max_solver_queries=4000
        )
        pr = probe_function(
            ll_verifier, "LinkedList::new", max_mutants=8, budget=budget
        )
        assert pr.killed
        assert pr.tried >= 1

    def test_vacuous_spec_not_killed(self, ll_env):
        """A function with no contract and a trivially-safe body: no
        mutant can be refuted — the 'suspect' raw material."""
        from repro.hybrid.pipeline import HybridVerifier

        program, ownables = ll_env
        fn = BodyBuilder("trivial", params=[("x", U64)], ret=U64, is_safe=True)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.copy("x"))
        bb.ret()
        program2 = Program(registry=program.registry)
        program2.add_body(fn.finish())
        hv = HybridVerifier(program2, ownables, {})
        hv.store = None
        budget = hv.budget.capped(deadline=5.0, max_solver_queries=4000)
        pr = probe_function(hv, "trivial", max_mutants=4, budget=budget)
        assert pr.tried >= 1
        assert not pr.killed

    def test_mutant_cap_respected(self, ll_verifier):
        pr = probe_function(
            ll_verifier,
            "LinkedList::pop_front_node",
            max_mutants=0,
            budget=ll_verifier.budget.capped(deadline=1.0),
        )
        assert pr.tried == 0
        assert not pr.killed
