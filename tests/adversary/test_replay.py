"""Concrete replay: clean functions replay clean, planted bugs are
observed, refutations get concrete witnesses, and the independent
Pearlite evaluator handles the contract fragment."""

import pytest

from repro.adversary.mutate import mutant_program, mutants_of
from repro.adversary.replay import (
    MutB,
    Plain,
    eval_pterm,
    replay_function,
)
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import U8, U64
from repro.pearlite.parser import parse_pearlite
from repro.rustlib.contracts import LINKED_LIST_CONTRACTS


class TestPearliteEval:
    def _ev(self, src, env):
        return eval_pterm(parse_pearlite(src), env)

    def test_arith_and_logic(self):
        env = {"x": Plain(3), "y": Plain(4)}
        assert self._ev("x@ + y@ == 7", env) is True
        assert self._ev("x@ < y@ && y@ <= 4", env) is True
        assert self._ev("x@ == 0 ==> y@ == 99", env) is True

    def test_sequences(self):
        env = {"s": Plain((1, 2, 3))}
        assert self._ev("s@.len() == 3", env) is True
        assert self._ev("s@.get(0) == 1", env) is True
        assert self._ev("s@ == Seq::cons(1, Seq::cons(2, Seq::cons(3, Seq::EMPTY)))", env) is True

    def test_mutable_borrow_final(self):
        env = {"v": MutB(cur=(1,), fin=(2, 1))}
        assert self._ev("(^v)@.len() == v@.len() + 1", env) is True

    def test_option_match(self):
        env = {"r": Plain(("Some", 5))}
        assert self._ev("match r { None => false, Some(v) => v == 5 }", env) is True
        env = {"r": Plain(("None",))}
        assert self._ev("match r { None => true, Some(v) => false }", env) is True


class TestReplayCorpus:
    @pytest.mark.parametrize(
        "name",
        [
            "LinkedList::new",
            "LinkedList::push_front_node",
            "LinkedList::pop_front_node",
            "LinkedList::push_front",
            "LinkedList::pop_front",
            "LinkedList::len",
            "LinkedList::is_empty",
            "LinkedList::front_mut",
        ],
    )
    def test_verified_functions_replay_clean(self, ll_env, name):
        program, _ = ll_env
        body = program.bodies[name]
        r = replay_function(
            program, body, LINKED_LIST_CONTRACTS.get(name), attempts=5, seed=0
        )
        assert not r.violated, r.violations
        assert r.checked > 0, "replay must actually execute something"

    def test_replay_observes_planted_bugs(self, ll_env):
        """Most deterministic mutants of a list operation must be
        caught by replay — otherwise the pass has no teeth."""
        program, _ = ll_env
        name = "LinkedList::push_front_node"
        body = program.bodies[name]
        caught = 0
        tried = 0
        for m in list(mutants_of(body, program.registry))[:8]:
            prog2 = mutant_program(program, name, m.body)
            r = replay_function(
                prog2, m.body, LINKED_LIST_CONTRACTS.get(name),
                attempts=5, seed=0,
            )
            tried += 1
            caught += bool(r.violated)
        assert caught >= tried // 2, f"only {caught}/{tried} mutants observed"


class TestReplayVerdicts:
    def test_postcondition_violation_is_reported(self):
        """A body that breaks its own contract: replay must say so."""
        fn = BodyBuilder("bad_inc", params=[("x", U8)], ret=U8)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.copy("x"))  # claims x+1, returns x
        bb.ret()
        prog = Program()
        prog.add_body(fn.finish())
        contract = {
            "requires": ["x@ < 255"],
            "ensures": ["result@ == x@ + 1"],
        }
        r = replay_function(prog, prog.bodies["bad_inc"], contract, attempts=4)
        assert r.violated
        assert "postcondition" in r.violations[0]

    def test_expected_violation_confirms_refutation(self):
        """With ``expect_violation=True`` (a refuted entry), finding a
        witness is the *good* outcome and replay keeps attempting."""
        fn = BodyBuilder("bad_zero", params=[("x", U64)], ret=U64)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.const_int(0, U64))
        bb.ret()
        prog = Program()
        prog.add_body(fn.finish())
        contract = {"requires": [], "ensures": ["result@ == x@"]}
        r = replay_function(
            prog, prog.bodies["bad_zero"], contract, attempts=4,
            expect_violation=True,
        )
        assert r.violated
        assert len(r.violations) >= 1

    def test_precondition_filters(self):
        fn = BodyBuilder("guarded", params=[("x", U64)], ret=U64)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.copy("x"))
        bb.ret()
        prog = Program()
        prog.add_body(fn.finish())
        contract = {"requires": ["x@ > u64::MAX"], "ensures": []}  # unsat
        r = replay_function(prog, prog.bodies["guarded"], contract, attempts=4)
        assert r.filtered == 4
        assert r.checked == 0

    def test_panic_only_flags_functional_verdicts(self):
        fn = BodyBuilder("inv", params=[("x", U64)], ret=U64)
        bb = fn.block()
        bb.assign(
            fn.ret_place, fn.binop("div", fn.const_int(1, U64), fn.copy("x"))
        )
        bb.ret()
        prog = Program()
        prog.add_body(fn.finish())
        contract = {"requires": [], "ensures": []}
        body = prog.bodies["inv"]
        # Some attempt draws x=0 and panics (division by zero).
        # Type-safety-only verdict: the panic is not a contradiction.
        r = replay_function(prog, body, contract, attempts=8, seed=0)
        assert not r.violated
        # Functional verdict: the same panic contradicts it.
        r = replay_function(
            prog, body, contract, attempts=8, seed=0, panic_is_violation=True
        )
        assert r.violated
        assert "panicked" in r.violations[0]

    def test_ghost_assert_checked(self):
        fn = BodyBuilder("ghosty", params=[("x", U64)], ret=U64)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.copy("x"))
        bb.ghost_assert("x@ == 12345")  # false for generated inputs
        bb.ret()
        prog = Program()
        prog.add_body(fn.finish())
        r = replay_function(prog, prog.bodies["ghosty"], None, attempts=4)
        assert r.violated
