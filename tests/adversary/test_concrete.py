"""The concrete MIR interpreter: Rust arithmetic semantics, heap
discipline (UAF/double-free/uninit detection), control flow, fuel."""

import pytest

from repro.adversary.concrete import (
    CHeap,
    ConcretePanic,
    ConcreteUB,
    EnumVal,
    Interp,
    ReplayLimit,
)
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import BOOL, U8, U64, box_ty, option_ty


def _run(body, args, program=None, fuel=20_000):
    prog = program or Program()
    if body.name not in prog.bodies:
        prog.add_body(body)
    return Interp(prog, CHeap(), fuel=fuel).call(body.name, args)


def _inc_u8():
    fn = BodyBuilder("inc", params=[("x", U8)], ret=U8)
    bb = fn.block()
    bb.assign(fn.ret_place, fn.binop("add", fn.copy("x"), fn.const_int(1, U8)))
    bb.ret()
    return fn.finish()


class TestArithmetic:
    def test_checked_add(self):
        assert _run(_inc_u8(), [41]) == 42

    def test_checked_add_overflow_panics(self):
        with pytest.raises(ConcretePanic):
            _run(_inc_u8(), [255])

    def test_unchecked_add_wraps(self):
        fn = BodyBuilder("incw", params=[("x", U8)], ret=U8)
        bb = fn.block()
        bb.assign(
            fn.ret_place,
            fn.binop("add_unchecked", fn.copy("x"), fn.const_int(1, U8)),
        )
        bb.ret()
        assert _run(fn.finish(), [255]) == 0

    def test_div_by_zero_panics(self):
        fn = BodyBuilder("div", params=[("x", U64), ("y", U64)], ret=U64)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.binop("div", fn.copy("x"), fn.copy("y")))
        bb.ret()
        assert _run(fn.finish(), [7, 2]) == 3
        with pytest.raises(ConcretePanic):
            _run(fn.finish(), [7, 0])

    def test_comparison(self):
        fn = BodyBuilder("lt", params=[("x", U64), ("y", U64)], ret=BOOL)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.binop("lt", fn.copy("x"), fn.copy("y")))
        bb.ret()
        assert _run(fn.finish(), [1, 2]) is True
        assert _run(fn.finish(), [2, 1]) is False


class TestControlFlow:
    def test_if_else(self):
        fn = BodyBuilder("pick", params=[("c", BOOL)], ret=U64)
        bb0 = fn.block()
        bt = fn.block("bt")
        bf = fn.block("bf")
        bb0.if_else(fn.copy("c"), bt, bf)
        bt.assign(fn.ret_place, fn.const_int(1, U64))
        bt.ret()
        bf.assign(fn.ret_place, fn.const_int(0, U64))
        bf.ret()
        assert _run(fn.finish(), [True]) == 1
        assert _run(fn.finish(), [False]) == 0

    def test_fuel_stops_infinite_loop(self):
        fn = BodyBuilder("spin", params=[("x", U64)], ret=U64)
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        bb0.goto(bb1)
        bb1.goto(bb1)
        with pytest.raises(ReplayLimit):
            _run(fn.finish(), [0], fuel=100)

    def test_call_chain(self):
        prog = Program()
        callee = BodyBuilder("callee", params=[("x", U64)], ret=U64)
        bb = callee.block()
        bb.assign(
            callee.ret_place,
            callee.binop("add", callee.copy("x"), callee.const_int(1, U64)),
        )
        bb.ret()
        prog.add_body(callee.finish())
        fn = BodyBuilder("caller", params=[("x", U64)], ret=U64)
        b0 = fn.block()
        b1 = fn.block("bb1")
        fn.local("t", U64)
        b0.call("t", "callee", [fn.copy("x")], b1)
        b1.assign(fn.ret_place, fn.copy("t"))
        b1.ret()
        assert _run(fn.finish(), [4], program=prog) == 5


class TestHeap:
    def test_box_new_deref_free(self):
        fn = BodyBuilder("boxed", params=[("x", U64)], ret=U64)
        b = fn.local("b", box_ty(U64))
        b0 = fn.block()
        b1 = fn.block("bb1")
        b0.call(b, "Box::new", [fn.copy("x")], b1, ty_args=(U64,))
        from repro.lang.mir import DerefProj, Place

        b1.assign(fn.ret_place, fn.copy(Place("b", (DerefProj(),))))
        b1.ret()
        assert _run(fn.finish(), [9]) == 9

    def test_double_free_is_ub(self):
        from repro.lang.mir import DerefProj, Place

        fn = BodyBuilder("dfree", params=[("x", U64)], ret=U64)
        b = fn.local("b", box_ty(U64))
        u = fn.local("u", U64)
        blocks = [fn.block() if i == 0 else fn.block(f"bb{i}") for i in range(4)]
        blocks[0].call(b, "Box::new", [fn.copy("x")], blocks[1], ty_args=(U64,))
        blocks[1].call(u, "intrinsic::box_free", [fn.copy("b")], blocks[2])
        blocks[2].call(u, "intrinsic::box_free", [fn.copy("b")], blocks[3])
        blocks[3].assign(fn.ret_place, fn.copy("x"))
        blocks[3].ret()
        with pytest.raises(ConcreteUB):
            _run(fn.finish(), [1])

    def test_use_after_free_is_ub(self):
        from repro.lang.mir import DerefProj, Place

        fn = BodyBuilder("uaf", params=[("x", U64)], ret=U64)
        b = fn.local("b", box_ty(U64))
        u = fn.local("u", U64)
        blocks = [fn.block() if i == 0 else fn.block(f"bb{i}") for i in range(3)]
        blocks[0].call(b, "Box::new", [fn.copy("x")], blocks[1], ty_args=(U64,))
        blocks[1].call(u, "intrinsic::box_free", [fn.copy("b")], blocks[2])
        blocks[2].assign(fn.ret_place, fn.copy(Place("b", (DerefProj(),))))
        blocks[2].ret()
        with pytest.raises(ConcreteUB):
            _run(fn.finish(), [1])

    def test_read_uninit_local_is_ub(self):
        fn = BodyBuilder("uninit", params=[("x", U64)], ret=U64)
        fn.local("y", U64)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.copy("y"))
        bb.ret()
        with pytest.raises(ConcreteUB):
            _run(fn.finish(), [1])


class TestAggregates:
    def test_option_roundtrip(self):
        fn = BodyBuilder("some", params=[("x", U64)], ret=option_ty(U64))
        bb = fn.block()
        bb.assign(
            fn.ret_place,
            fn.aggregate(option_ty(U64), [fn.copy("x")], variant=1),
        )
        bb.ret()
        out = _run(fn.finish(), [3])
        assert out == EnumVal(1, (3,))

    def test_discriminant(self):
        fn = BodyBuilder("disc", params=[("x", U64)], ret=U64)
        o = fn.local("o", option_ty(U64))
        bb = fn.block()
        bb.assign(o, fn.aggregate(option_ty(U64), [fn.copy("x")], variant=1))
        bb.assign(fn.ret_place, fn.discriminant(o))
        bb.ret()
        assert _run(fn.finish(), [3]) == 1
