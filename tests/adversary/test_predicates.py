"""Concrete produce/consume over Gilsonite ownership predicates: the
value generator must build real heap structures whose models round-trip
through ``model_of``, and consume must reject broken structures."""

import pytest

from repro.adversary.concrete import Addr, CHeap, EnumVal
from repro.adversary.predicates import (
    Chooser,
    Ctx,
    OwnershipViolation,
    model_of,
    produce_value,
)
from repro.lang.types import BOOL, U64, USIZE, box_ty, option_ty


def _produce(program, ty, seed=0, size=2):
    heap = CHeap()
    ctx = Ctx(program, heap, mode="produce", chooser=Chooser(seed, size))
    value = produce_value(ctx, ty)
    return heap, value


class TestPrimitives:
    def test_ints_and_bools(self, ll_env):
        program, _ = ll_env
        heap, v = _produce(program, U64)
        assert isinstance(v, int) and 0 <= v <= U64.max_value
        assert model_of(program, heap, U64, v) == v
        heap, b = _produce(program, BOOL)
        assert isinstance(b, bool)

    def test_option(self, ll_env):
        program, _ = ll_env
        heap, v = _produce(program, option_ty(U64), size=2)
        assert isinstance(v, EnumVal)
        m = model_of(program, heap, option_ty(U64), v)
        assert m[0] in ("Some", "None")

    def test_box_allocates(self, ll_env):
        program, _ = ll_env
        heap, v = _produce(program, box_ty(U64))
        assert isinstance(v, Addr)
        m = model_of(program, heap, box_ty(U64), v)
        assert isinstance(m, int)


class TestLinkedList:
    def test_produced_list_models_as_seq(self, ll_env):
        program, _ = ll_env
        from repro.rustlib.linked_list import LIST

        lens = set()
        for seed in range(6):
            for size in (0, 1, 2, 3):
                heap, v = _produce(program, LIST, seed=seed, size=size)
                m = model_of(program, heap, LIST, v)
                assert isinstance(m, tuple)
                lens.add(len(m))
        # The size schedule must reach both empty and non-trivial lists.
        assert 0 in lens
        assert any(n >= 2 for n in lens)

    def test_len_field_matches_model(self, ll_env):
        """The dllSeg * (len == |repr|) invariant holds concretely."""
        program, _ = ll_env
        from repro.rustlib.linked_list import LIST

        heap, v = _produce(program, LIST, seed=1, size=3)
        m = model_of(program, heap, LIST, v)
        # LinkedList { head, tail, len }: field 2 is the length.
        assert v.fields[2] == len(m)

    def test_corrupted_len_fails_consume(self, ll_env):
        program, _ = ll_env
        from repro.rustlib.linked_list import LIST

        heap, v = _produce(program, LIST, seed=1, size=2)
        bad = type(v)(fields=v.fields[:2] + (v.fields[2] + 1,))
        with pytest.raises(OwnershipViolation):
            model_of(program, heap, LIST, bad)

    def test_dangling_head_fails_consume(self, ll_env):
        program, _ = ll_env
        from repro.rustlib.linked_list import LIST

        heap, v = _produce(program, LIST, seed=1, size=2)
        if v.fields[2] == 0:
            pytest.skip("need a non-empty list")
        bad = type(v)(fields=(EnumVal(1, (Addr(-7, ()),)),) + v.fields[1:])
        with pytest.raises(OwnershipViolation):
            model_of(program, heap, LIST, bad)


class TestDeterminism:
    def test_same_seed_same_structure(self, ll_env):
        program, _ = ll_env
        from repro.rustlib.linked_list import LIST

        m1 = []
        m2 = []
        for out in (m1, m2):
            heap, v = _produce(program, LIST, seed=3, size=3)
            out.append(model_of(program, heap, LIST, v))
        assert m1 == m2
