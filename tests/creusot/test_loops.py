"""Loop invariants in the Creusot half (invariant-cut semantics)."""

import pytest

from repro.creusot.vcgen import CreusotVerifier
from repro.gilsonite.ownable import OwnableRegistry
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import BOOL, U64, UNIT
from repro.rustlib.contracts import LINKED_LIST_CONTRACTS
from repro.rustlib.linked_list import LIST, MUT_LIST, T, build_program
from repro.solver import Solver


def count_body(name="count_to_n", invariant="acc == i && i <= n"):
    fn = BodyBuilder(name, params=[("n", U64)], ret=U64, is_safe=True)
    bb0 = fn.block()
    head = fn.block("head")
    loop_body = fn.block("body")
    done = fn.block("done")
    i = fn.local("i", U64)
    acc = fn.local("acc", U64)
    bb0.assign(i, fn.const_int(0, U64))
    bb0.assign(acc, fn.const_int(0, U64))
    bb0.goto(head)
    head.invariant(invariant, modifies=["i", "acc"])
    t = fn.local("t", BOOL)
    head.assign(t, fn.binop("eq", fn.copy(i), fn.copy("n")))
    head.if_else(fn.copy(t), done, loop_body)
    loop_body.assign(acc, fn.binop("add", fn.copy(acc), fn.const_int(1, U64)))
    loop_body.assign(i, fn.binop("add", fn.copy(i), fn.const_int(1, U64)))
    loop_body.goto(head)
    done.assign(fn.ret_place, fn.copy(acc))
    done.ret()
    return fn.finish()


class TestScalarLoops:
    def test_count_to_n(self):
        program = Program()
        ownables = OwnableRegistry(program)
        body = count_body()
        program.add_body(body)
        v = CreusotVerifier(
            program, ownables, {"count_to_n": {"ensures": ["result == n"]}}, Solver()
        )
        r = v.verify(body)
        assert r.ok, [str(i) for i in r.issues]
        # Establishment + preservation + exit all happen: >= 3 VCs.
        assert r.vcs >= 3

    def test_unpreserved_invariant_rejected(self):
        program = Program()
        ownables = OwnableRegistry(program)
        body = count_body(name="bad", invariant="acc == i && i == 0")
        program.add_body(body)
        v = CreusotVerifier(program, ownables, {"bad": {}}, Solver())
        r = v.verify(body)
        assert not r.ok
        assert any("not preserved" in str(i) for i in r.issues)

    def test_unestablished_invariant_rejected(self):
        program = Program()
        ownables = OwnableRegistry(program)
        body = count_body(name="bad2", invariant="i == 1")
        program.add_body(body)
        v = CreusotVerifier(program, ownables, {"bad2": {}}, Solver())
        r = v.verify(body)
        assert not r.ok
        assert any("not established" in str(i) for i in r.issues)

    def test_too_weak_invariant_fails_post(self):
        # "true" is preserved but does not imply the postcondition.
        program = Program()
        ownables = OwnableRegistry(program)
        body = count_body(name="weak", invariant="true")
        program.add_body(body)
        v = CreusotVerifier(
            program, ownables, {"weak": {"ensures": ["result == n"]}}, Solver()
        )
        r = v.verify(body)
        assert not r.ok


class TestLoopsOverUnsafeAPIs:
    def test_push_n_times(self):
        """A safe loop pushing into the (unsafe) LinkedList, verified
        against its axioms: l@.len() == i is the cut invariant."""
        program, ownables = build_program()
        fn = BodyBuilder(
            "client::push_n",
            params=[("l", MUT_LIST), ("x", T), ("n", U64)],
            ret=UNIT,
            generics=("T",),
            is_safe=True,
        )
        bb0 = fn.block()
        head = fn.block("head")
        loop_body = fn.block("body")
        cont = fn.block("cont")
        done = fn.block("done")
        i = fn.local("i", U64)
        bb0.assign(i, fn.const_int(0, U64))
        bb0.goto(head)
        head.invariant("i <= n && l@.len() == i", modifies=["i", "l"])
        t = fn.local("t", BOOL)
        head.assign(t, fn.binop("eq", fn.copy(i), fn.copy("n")))
        head.if_else(fn.copy(t), done, loop_body)
        r = fn.local("r", MUT_LIST)
        loop_body.assign(r, fn.ref(fn.place("l").deref(), mutable=True))
        u = fn.local("u", UNIT)
        loop_body.call(u, "LinkedList::push_front", [fn.move(r), fn.copy("x")], cont)
        cont.assign(i, fn.binop("add", fn.copy(i), fn.const_int(1, U64)))
        cont.goto(head)
        done.ghost_assert("l@.len() == n")
        done.mutref_auto_resolve("l")
        done.assign(fn.ret_place, fn.const_unit())
        done.ret()
        body = fn.finish()
        program.add_body(body)
        v = CreusotVerifier(
            program,
            ownables,
            dict(
                LINKED_LIST_CONTRACTS,
                **{
                    "client::push_n": {
                        "requires": ["l@.len() == 0", "n < 1000"],
                        "ensures": ["(^l)@.len() == n"],
                    }
                },
            ),
            Solver(),
        )
        r = v.verify(body)
        assert r.ok, [str(i) for i in r.issues]
