"""Tests for the Creusot half: safe-Rust verification over pure models
with prophetic borrows (§2.1, RustHorn-style encoding)."""

import pytest

import repro.rustlib.linked_list as ll
from repro.creusot.vcgen import CreusotVerifier
from repro.lang.builder import BodyBuilder
from repro.lang.types import BOOL, U64, UNIT, USIZE, RefTy, option_ty
from repro.rustlib.contracts import LINKED_LIST_CONTRACTS
from repro.rustlib.linked_list import LIST, MUT_LIST, T, build_program
from repro.solver import Solver


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    return program, ownables


def make_verifier(program, ownables, extra_contracts=None):
    contracts = dict(LINKED_LIST_CONTRACTS)
    contracts.update(extra_contracts or {})
    return CreusotVerifier(program, ownables, contracts, Solver())


class TestPureCode:
    def test_arithmetic_with_contract(self, env):
        program, ownables = env
        fn = BodyBuilder("double", params=[("x", U64)], ret=U64, is_safe=True)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.binop("add", fn.copy("x"), fn.copy("x")))
        bb.ret()
        body = fn.finish()
        program.bodies.setdefault("double", body)
        v = make_verifier(program, ownables, {"double": {
            "requires": ["x < 1000"],
            "ensures": ["result == x + x"],
        }})
        r = v.verify(body)
        assert r.ok, [str(i) for i in r.issues]

    def test_overflow_rejected_without_requires(self, env):
        program, ownables = env
        fn = BodyBuilder("double2", params=[("x", U64)], ret=U64, is_safe=True)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.binop("add", fn.copy("x"), fn.copy("x")))
        bb.ret()
        body = fn.finish()
        v = make_verifier(program, ownables, {"double2": {}})
        r = v.verify(body)
        assert not r.ok
        assert any("panic" in str(i) for i in r.issues)

    def test_wrong_ensures_rejected(self, env):
        program, ownables = env
        fn = BodyBuilder("ident", params=[("x", U64)], ret=U64, is_safe=True)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.copy("x"))
        bb.ret()
        body = fn.finish()
        v = make_verifier(program, ownables, {"ident": {"ensures": ["result == x + 1"]}})
        r = v.verify(body)
        assert not r.ok

    def test_unsafe_body_rejected(self, env):
        # Creusot's defining limitation: unsafe code is out of reach.
        program, ownables = env
        v = make_verifier(program, ownables)
        r = v.verify(program.bodies["LinkedList::pop_front_node"])
        assert not r.ok
        assert any("unsafe" in str(i) for i in r.issues)


class TestPropheticBorrows:
    def build_client(self, program):
        """l = new(); push_front(&mut l, x); push_front(&mut l, y);
        o = pop_front(&mut l); assert o == Some(y)."""
        fn = BodyBuilder(
            "client", params=[("x", T), ("y", T)], ret=option_ty(T),
            generics=("T",), is_safe=True,
        )
        bbs = [fn.block() if i == 0 else fn.block(f"bb{i}") for i in range(5)]
        l = fn.local("l", LIST)
        bbs[0].call(l, "LinkedList::new", [], bbs[1])
        for i, arg in ((1, "x"), (2, "y")):
            r = fn.local(f"r{i}", MUT_LIST)
            bbs[i].assign(r, fn.ref("l", mutable=True))
            u = fn.local(f"u{i}", UNIT)
            bbs[i].call(u, "LinkedList::push_front", [fn.move(r), fn.copy(arg)], bbs[i + 1])
        r3 = fn.local("r3", MUT_LIST)
        bbs[3].assign(r3, fn.ref("l", mutable=True))
        o = fn.local("o", option_ty(T))
        bbs[3].call(o, "LinkedList::pop_front", [fn.move(r3)], bbs[4])
        bbs[4].ghost_assert("match o { None => false, Some(v) => v == y }")
        bbs[4].assign(fn.ret_place, fn.copy("o"))
        bbs[4].ret()
        return fn.finish()

    def test_push_push_pop(self, env):
        program, ownables = env
        body = self.build_client(program)
        v = make_verifier(program, ownables)
        r = v.verify(body)
        assert r.ok, [str(i) for i in r.issues]

    def test_wrong_assertion_fails(self, env):
        program, ownables = env
        fn = BodyBuilder(
            "client_bad", params=[("x", T), ("y", T)], ret=option_ty(T),
            generics=("T",), is_safe=True,
        )
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        bb2 = fn.block("bb2")
        bb3 = fn.block("bb3")
        l = fn.local("l", LIST)
        bb0.call(l, "LinkedList::new", [], bb1)
        r1 = fn.local("r1", MUT_LIST)
        bb1.assign(r1, fn.ref("l", mutable=True))
        u1 = fn.local("u1", UNIT)
        bb1.call(u1, "LinkedList::push_front", [fn.move(r1), fn.copy("x")], bb2)
        r2 = fn.local("r2", MUT_LIST)
        bb2.assign(r2, fn.ref("l", mutable=True))
        o = fn.local("o", option_ty(T))
        bb2.call(o, "LinkedList::pop_front", [fn.move(r2)], bb3)
        # Wrong: the popped element is x, not y.
        bb3.ghost_assert("match o { None => false, Some(v) => v == y }")
        bb3.assign(fn.ret_place, fn.copy("o"))
        bb3.ret()
        body = fn.finish()
        v = make_verifier(program, ownables)
        r = v.verify(body)
        assert not r.ok

    def test_pop_of_empty_is_none(self, env):
        program, ownables = env
        fn = BodyBuilder("client_empty", params=[], ret=option_ty(T),
                         generics=("T",), is_safe=True)
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        bb2 = fn.block("bb2")
        l = fn.local("l", LIST)
        bb0.call(l, "LinkedList::new", [], bb1)
        r1 = fn.local("r1", MUT_LIST)
        bb1.assign(r1, fn.ref("l", mutable=True))
        o = fn.local("o", option_ty(T))
        bb1.call(o, "LinkedList::pop_front", [fn.move(r1)], bb2)
        bb2.ghost_assert("match o { None => true, Some(v) => false }")
        bb2.assign(fn.ret_place, fn.copy("o"))
        bb2.ret()
        v = make_verifier(program, ownables)
        r = v.verify(fn.finish())
        assert r.ok, [str(i) for i in r.issues]

    def test_push_precondition_checked(self, env):
        # Without knowing len < usize::MAX, push_front's requires must fail.
        program, ownables = env
        fn = BodyBuilder(
            "client_nopre", params=[("l", MUT_LIST), ("x", T)], ret=UNIT,
            generics=("T",), is_safe=True,
        )
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        r1 = fn.local("r1", MUT_LIST)
        bb0.assign(r1, fn.ref(fn.place("l").deref(), mutable=True))
        u = fn.local("u", UNIT)
        bb0.call(u, "LinkedList::push_front", [fn.move(r1), fn.copy("x")], bb1)
        bb1.assign(fn.ret_place, fn.const_unit())
        bb1.ret()
        v = make_verifier(program, ownables)
        r = v.verify(fn.finish())
        assert not r.ok
        assert any("precondition" in str(i) for i in r.issues)

    def test_reborrow_chain(self, env):
        # Borrowing through an incoming &mut works via reborrows.
        program, ownables = env
        fn = BodyBuilder(
            "client_reborrow", params=[("l", MUT_LIST), ("x", T)], ret=UNIT,
            generics=("T",), is_safe=True,
        )
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        bb2 = fn.block("bb2")
        r1 = fn.local("r1", MUT_LIST)
        bb0.assign(r1, fn.ref(fn.place("l").deref(), mutable=True))
        u = fn.local("u", UNIT)
        bb0.call(u, "LinkedList::push_front", [fn.move(r1), fn.copy("x")], bb1)
        r2 = fn.local("r2", MUT_LIST)
        bb1.assign(r2, fn.ref(fn.place("l").deref(), mutable=True))
        o = fn.local("o", option_ty(T))
        bb1.call(o, "LinkedList::pop_front", [fn.move(r2)], bb2)
        bb2.ghost_assert("match o { None => false, Some(v) => v == x }")
        bb2.mutref_auto_resolve("l")
        bb2.assign(fn.ret_place, fn.const_unit())
        bb2.ret()
        v = make_verifier(
            program, ownables,
            {"client_reborrow": {"requires": ["l@.len() < usize::MAX"]}},
        )
        r = v.verify(fn.finish())
        assert r.ok, [str(i) for i in r.issues]
