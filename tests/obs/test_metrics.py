"""The metrics registry: instruments, legacy-group absorption, the
single reset path, and the fork-worker delta protocol."""

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import Metrics, metrics
from repro.parallel import PARALLEL_STATS, reset_parallel_stats
from repro.solver.core import GLOBAL_STATS, reset_global_stats
from repro.store.store import STORE_STATS, reset_store_stats


class TestInstruments:
    def test_counters(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 2)
        assert m.counter("a") == 3
        assert m.counter("missing") == 0

    def test_gauges_and_histograms(self):
        m = Metrics()
        m.gauge("g", 1.5)
        m.observe("h", 2.0)
        m.observe("h", 4.0)
        snap = m.snapshot()
        assert snap["gauges"]["g"] == 1.5
        h = snap["histograms"]["h"]
        assert h == {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0}


class TestLegacyGroups:
    """The four historical stats dicts are absorbed as named groups;
    the old ``reset_*_stats`` functions are thin aliases."""

    def test_groups_registered(self):
        groups = metrics.snapshot()["groups"]
        assert set(groups) >= {"solver", "parallel", "store"}
        assert groups["solver"].keys() == GLOBAL_STATS.keys()

    def test_group_reset_zeroes_the_module_dict(self):
        GLOBAL_STATS["checks"] += 7
        metrics.reset("solver")
        assert GLOBAL_STATS["checks"] == 0

    def test_deprecated_aliases_route_through_registry(self):
        GLOBAL_STATS["checks"] += 1
        PARALLEL_STATS["fanouts"] += 1
        STORE_STATS["hits"] += 1
        reset_global_stats()
        reset_parallel_stats()
        reset_store_stats()
        assert GLOBAL_STATS["checks"] == 0
        assert PARALLEL_STATS["fanouts"] == 0
        assert STORE_STATS["hits"] == 0

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            metrics.reset("no-such-group")

    def test_full_reset_clears_everything(self):
        metrics.inc("test.full_reset")
        GLOBAL_STATS["branches"] += 3
        metrics.reset()
        assert metrics.counter("test.full_reset") == 0
        assert GLOBAL_STATS["branches"] == 0


class TestDeltaProtocol:
    """What a forked worker ships back and how the parent merges it."""

    def test_counter_delta_roundtrip(self):
        m = Metrics()
        m.inc("x", 5)
        base = m.delta_snapshot()
        m.inc("x", 2)
        m.inc("y")
        d = m.delta_since(base)
        assert d["counters"] == {"x": 2, "y": 1}
        parent = Metrics()
        parent.inc("x", 100)
        parent.merge_delta(d)
        assert parent.counter("x") == 102
        assert parent.counter("y") == 1

    def test_legacy_group_delta(self):
        m = Metrics()
        stats = m.register_legacy("g", {"n": 10})
        base = m.delta_snapshot()
        stats["n"] += 4
        d = m.delta_since(base)
        assert d["groups"] == {"g": {"n": 4}}
        parent = Metrics()
        pstats = parent.register_legacy("g", {"n": 1})
        parent.merge_delta(d)
        assert pstats["n"] == 5

    def test_no_delta_group_excluded(self):
        """The store group opts out: the parent credits worker
        publishes through ``note_worker_publish`` — shipping the
        worker-side counters too would double-count."""
        m = Metrics()
        stats = m.register_legacy("store-like", {"stores": 0}, delta=False)
        base = m.delta_snapshot()
        stats["stores"] += 3
        d = m.delta_since(base)
        assert "store-like" not in d["groups"]

    def test_real_store_group_is_no_delta(self):
        base = metrics.delta_snapshot()
        assert "store" not in base["groups"]
        assert "solver" in base["groups"]
