"""End-to-end observability through ``HybridVerifier.run``: trace
export on a real pipeline run, ``jobs=2`` worker-delta merging, and
the verbose profiling report."""

import json
import os
import subprocess
import sys

import pytest

from repro.hybrid.pipeline import HybridVerifier
from repro.obs import trace
from repro.obs.metrics import metrics
from repro.parallel import fork_available
from repro.store import ProofStore

from tests.robustness.conftest import FAST_FNS, fingerprint, small_env  # noqa: F401

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)

#: Counters that must be identical between jobs=1 and jobs=N: tactic
#: applications and top-level consume/produce calls are functions of
#: the program alone. (Solver cache counters are NOT in this list:
#: serial runs share one LRU across functions while each forked worker
#: has a private copy, so hit/miss splits legitimately differ.)
DETERMINISTIC_COUNTERS = (
    "tactic.unfolds",
    "tactic.folds",
    "tactic.gunfolds",
    "tactic.gfolds",
    "tactic.repairs",
    "tactic.auto_updates",
    "gillian.consumes",
    "gillian.produces",
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    trace.disable()
    metrics.reset()
    yield
    trace.disable()
    metrics.reset()


def make_verifier(small_env, **kw):
    program, ownables = small_env
    return HybridVerifier(program, ownables, {}, **kw)


def deterministic_counters():
    return {k: metrics.counter(k) for k in DETERMINISTIC_COUNTERS}


class TestTraceExport:
    def test_serial_run_emits_schema_valid_trace(self, small_env, tmp_path):
        out = tmp_path / "trace.json"
        trace.enable(str(out))
        store = ProofStore(tmp_path / "cache")
        report = make_verifier(small_env, store=store).run(FAST_FNS, jobs=1)
        assert report.ok
        doc = json.loads(out.read_text())  # run() flushed
        assert trace.validate_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"verify", "symex", "solve", "store.lookup", "store.put"} <= names

    def test_phase_stats_cover_every_function(self, small_env):
        report = make_verifier(small_env).run(FAST_FNS, jobs=1)
        for fn in FAST_FNS:
            assert "verify" in report.phase_stats[fn]
            assert "symex" in report.phase_stats[fn]
        assert report.top_queries, "solver queries should be on record"
        # Self-times per function sum to ≈ that function's verify total.
        for fn in FAST_FNS:
            phases = report.phase_stats[fn]
            total = phases["verify"]["total"]
            self_sum = sum(p["self"] for p in phases.values())
            assert self_sum == pytest.approx(total, rel=0.05, abs=0.005)

    def test_solver_stats_use_global_delta(self, small_env):
        report = make_verifier(small_env).run(FAST_FNS, jobs=1)
        assert report.solver_stats["checks"] > 0

    def test_off_switch_disables_aggregation(self, small_env, monkeypatch):
        monkeypatch.setattr(trace, "OFF", True)
        report = make_verifier(small_env).run(FAST_FNS, jobs=1)
        assert report.ok
        assert report.phase_stats == {}
        assert report.top_queries == []


@needs_fork
class TestParallelMerging:
    def test_jobs2_trace_has_worker_pids_and_merged_counters(
        self, small_env, tmp_path
    ):
        serial = make_verifier(
            small_env, store=ProofStore(tmp_path / "cache-serial")
        ).run(FAST_FNS, jobs=1)
        serial_counters = deterministic_counters()
        serial_phases = serial.phase_stats

        metrics.reset()
        out = tmp_path / "trace.json"
        trace.enable(str(out))
        parallel = make_verifier(
            small_env, store=ProofStore(tmp_path / "cache-par")
        ).run(FAST_FNS, jobs=2)
        trace.disable()

        assert fingerprint(parallel) == fingerprint(serial)
        # Worker spans appear in the merged trace under their own pids,
        # distinct from the parent's.
        doc = json.loads(out.read_text())
        assert trace.validate_trace(doc) == []
        span_pids = {
            e["pid"] for e in doc["traceEvents"] if e["name"] == "verify"
        }
        assert span_pids, "worker verify spans must reach the merged trace"
        assert os.getpid() not in span_pids
        assert os.getpid() in {e["pid"] for e in doc["traceEvents"]}
        # Merged counters equal the serial run's (for counters that are
        # deterministic across scheduling — see DETERMINISTIC_COUNTERS).
        assert deterministic_counters() == serial_counters
        # Worker phase times merged into the parent's report: every
        # function has its symex/solve phases despite running remotely.
        for fn in FAST_FNS:
            assert "symex" in parallel.phase_stats[fn]
            assert (
                parallel.phase_stats[fn]["solve"]["calls"]
                == serial_phases[fn]["solve"]["calls"]
            )


class TestVerboseReport:
    def test_render_verbose_appends_profiling_sections(self, small_env):
        report = make_verifier(small_env).run(FAST_FNS, jobs=1)
        plain = report.render()
        verbose = report.render(verbose=True)
        assert plain in verbose
        assert "per-function phase times" in verbose
        assert "slowest solver queries" in verbose
        assert "tactic counts" in verbose
        assert FAST_FNS[0] in verbose.split("phase times")[1]

    def test_trace_report_script_roundtrip(self, small_env, tmp_path):
        out = tmp_path / "trace.json"
        trace.enable(str(out))
        make_verifier(small_env).run(FAST_FNS, jobs=1)
        trace.disable()
        proc = subprocess.run(
            [sys.executable, "scripts/trace_report.py", str(out)],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "valid trace" in proc.stdout
        assert "per-function phase times" in proc.stdout
        assert FAST_FNS[0] in proc.stdout
