"""Spans, phase aggregation, top-K queries, Chrome trace export and
the schema validator."""

import json

import pytest

from repro.obs import trace
from repro.obs.metrics import metrics


@pytest.fixture(autouse=True)
def clean_trace_state():
    """Each test starts with tracing off and empty aggregates, and
    leaves no enabled tracer behind for the rest of the suite."""
    trace.disable()
    trace._clear_aggregates()
    yield
    trace.disable()
    trace._clear_aggregates()


class TestSpanModes:
    def test_off_flag_nulls_all_spans(self, monkeypatch):
        monkeypatch.setattr(trace, "OFF", True)
        assert trace.span("x") is trace._NULL
        assert trace.detail_span("x") is trace._NULL
        trace.record_phase("f", "solve", 1.0)
        assert trace.phases_snapshot() == {}

    def test_detail_span_null_unless_tracing(self):
        assert trace.detail_span("engine.block") is trace._NULL
        trace.enable()
        assert trace.detail_span("engine.block") is not trace._NULL

    def test_coarse_span_aggregates_without_tracing(self):
        with trace.span("symex", function="f"):
            pass
        phases = trace.phases_since({})
        assert phases["f"]["symex"]["calls"] == 1
        # No event collection happened.
        assert trace.export()["traceEvents"] == []


class TestAttribution:
    def test_function_inherited_from_enclosing_span(self):
        with trace.span("verify", function="outer_fn"):
            assert trace.current_function() == "outer_fn"
            with trace.span("symex"):
                trace.record_phase(trace.current_function(), "solve", 0.25)
        phases = trace.phases_since({})
        assert "solve" in phases["outer_fn"]
        assert phases["outer_fn"]["solve"]["total"] == pytest.approx(0.25)

    def test_self_time_excludes_children(self):
        with trace.span("symex", function="f"):
            trace.record_phase("f", "solve", 0.25)
        p = trace.phases_since({})["f"]
        # symex self = symex total - the 0.25s credited to solve.
        assert p["symex"]["total"] - p["symex"]["self"] == pytest.approx(0.25)


class TestTopQueries:
    def test_topk_keeps_slowest_and_is_lazy(self):
        described = []

        def describe(i):
            def _d():
                described.append(i)
                return f"q{i}"
            return _d

        # Ascending durations: every query enters the heap (evicting
        # the fastest) until only the slowest TOP_K remain.
        for i in range(trace.TOP_K_QUERIES + 10):
            trace.record_query(0.001 * (i + 1), describe(i))
        rows = trace.top_queries()
        assert len(rows) == trace.TOP_K_QUERIES
        assert rows[0]["query"] == f"q{trace.TOP_K_QUERIES + 9}"
        assert rows[0]["seconds"] >= rows[-1]["seconds"]

        # A query faster than everything in the full table must not
        # call its (potentially expensive) describe callback.
        described.clear()
        trace.record_query(1e-9, describe(999))
        assert described == []


class TestExportAndValidation:
    def test_balanced_events_and_schema(self):
        trace.enable()
        with trace.span("verify", function="f"):
            with trace.span("symex"):
                with trace.detail_span("engine.block", block="bb0"):
                    pass
            trace.instant_event("tactics", function="f", **{"tactic.folds": 2})
        doc = trace.export()
        assert trace.validate_trace(doc) == []
        names = [e["name"] for e in doc["traceEvents"]]
        assert names.count("verify") == 2  # one B, one E
        assert "engine.block" in names
        assert "tactics" in names

    def test_balance_survives_exceptions(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("verify", function="f"):
                with trace.span("symex"):
                    raise RuntimeError("boom")
        assert trace.validate_trace(trace.export()) == []

    def test_flush_writes_only_in_owner_process(self, tmp_path):
        out = tmp_path / "t.json"
        trace.enable(str(out))
        with trace.span("verify", function="f"):
            pass
        assert trace.flush() == str(out)
        doc = json.loads(out.read_text())
        assert trace.validate_trace(doc) == []
        # Simulate a forked worker: same enabled state, different owner.
        trace._TRACE.owner_pid = 1
        assert trace.flush() is None

    def test_validator_rejects_malformed_documents(self):
        assert trace.validate_trace([]) != []
        assert trace.validate_trace({"traceEvents": 3}) != []
        bad_ph = {"traceEvents": [
            {"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("bad ph" in e for e in trace.validate_trace(bad_ph))
        no_name = {"traceEvents": [{"ph": "I", "ts": 0, "pid": 1, "tid": 1}]}
        assert any("missing name" in e for e in trace.validate_trace(no_name))
        unbalanced = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("unclosed" in e for e in trace.validate_trace(unbalanced))
        crossed = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
        ]}
        assert trace.validate_trace(crossed) != []

    def test_validator_separates_lanes_by_pid_tid(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 0, "pid": 2, "tid": 1},
            {"name": "b", "ph": "E", "ts": 1, "pid": 2, "tid": 1},
            {"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
        ]}
        assert trace.validate_trace(doc) == []


class TestWorkerDelta:
    def test_roundtrip_merges_events_phases_and_queries(self):
        trace.enable()
        with trace.span("verify", function="pre-existing"):
            pass
        mark = trace.worker_begin()
        with trace.span("verify", function="worker-fn"):
            trace.record_phase("worker-fn", "solve", 0.5)
        trace.record_query(0.5, lambda: "worker query")
        delta = trace.worker_delta(mark)

        # Simulate the parent: fresh aggregates, then merge.
        trace._clear_aggregates()
        events_before = len(trace._TRACE.events)
        trace.merge_worker_delta(delta)
        assert len(trace._TRACE.events) > events_before
        phases = trace.phases_since({})
        assert phases["worker-fn"]["solve"]["total"] == pytest.approx(0.5)
        assert "pre-existing" not in phases
        assert any(q["query"] == "worker query" for q in trace.top_queries())

    def test_merge_deduplicates_queries_by_id(self):
        trace.record_query(0.5, lambda: "q")
        mark_queries = set()
        delta = {
            "events": [],
            "metrics": {},
            "phases": {},
            "queries": [
                q for q in trace._QUERIES.values() if q[1] not in mark_queries
            ],
        }
        trace.merge_worker_delta(delta)
        assert len([q for q in trace.top_queries() if q["query"] == "q"]) == 1

    def test_merge_deduplicates_queries_by_shape(self):
        # Same query shape from two workers (distinct SSA counters):
        # the slower observation wins, the top-K holds one entry.
        trace.record_query(0.5, lambda: "sv_q_f#12 = none")
        delta = {
            "events": [],
            "metrics": {},
            "phases": {},
            "queries": [[0.9, "qid-other", None, "sv_q_f#99 = none"]],
        }
        trace.merge_worker_delta(delta)
        matching = [
            q for q in trace.top_queries() if q["query"].startswith("sv_q_f#")
        ]
        assert len(matching) == 1
        assert matching[0]["seconds"] == pytest.approx(0.9)

    def test_metrics_travel_with_the_delta(self):
        mark = trace.worker_begin()
        metrics.inc("test.delta_counter", 3)
        delta = trace.worker_delta(mark)
        metrics.reset()
        trace.merge_worker_delta(delta)
        assert metrics.counter("test.delta_counter") == 3
        metrics.reset()
