"""Concurrent multi-process store access: many writers racing on the
same root (and the same fingerprint) must never produce a torn or
half-visible entry — publishes are atomic renames of fsynced temp
files, so readers see nothing or a valid entry, and content-addressed
keys make double-publishes benign."""

import multiprocessing
import os
import time

import pytest

from repro.parallel import fork_available
from repro.store import ProofStore, STORE_STATS

from tests.store.test_store import FP, entries_for

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="contention tests fork writer processes"
)

FPS = [f"{i:02x}" + f"{i:x}" * 62 for i in range(8)]


def _writer(root, fps, barrier):
    store = ProofStore(root, shards=16)
    barrier.wait(timeout=30)
    for i, fp in enumerate(fps):
        store.put(fp, f"fn{i}", entries_for(f"fn{i}"))
    os._exit(0)


def _spawn_writers(root, groups):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(len(groups))
    procs = [
        ctx.Process(target=_writer, args=(root, fps, barrier))
        for fps in groups
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    return procs


class TestContention:
    def test_disjoint_writers_all_land(self, tmp_path):
        _spawn_writers(tmp_path, [FPS[:4], FPS[4:]])
        reader = ProofStore(tmp_path, shards=16)
        for fp in FPS:
            entries = reader.get(fp)
            assert entries is not None
            assert entries[0].status == "verified"
        assert STORE_STATS["corrupt"] == 0
        assert list(reader.tmp_dir.iterdir()) == []

    def test_same_fingerprint_racers_publish_once_atomically(self, tmp_path):
        # Four processes all publishing FP simultaneously (barrier-
        # released): last rename wins, every intermediate state is a
        # complete entry.
        _spawn_writers(tmp_path, [[FP]] * 4)
        reader = ProofStore(tmp_path, shards=16)
        [e] = reader.get(FP)
        assert e.function == "fn0" and e.ok
        assert STORE_STATS["corrupt"] == 0
        assert list(reader.tmp_dir.iterdir()) == []

    def test_reader_races_writers(self, tmp_path):
        # A reader polling while writers publish must only ever see
        # misses or complete entries — never corruption.
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        p = ctx.Process(target=_writer, args=(tmp_path, FPS, barrier))
        p.start()
        reader = ProofStore(tmp_path, shards=16)
        barrier.wait(timeout=30)
        seen = set()
        deadline = time.monotonic() + 120
        while len(seen) < len(FPS) and time.monotonic() < deadline:
            for fp in FPS:
                if fp not in seen and reader.get(fp) is not None:
                    seen.add(fp)
        p.join(timeout=120)
        assert p.exitcode == 0
        assert seen == set(FPS)
        assert STORE_STATS["corrupt"] == 0

    def test_concurrent_openers_agree_on_layout(self, tmp_path):
        # First-open stamping races: whoever wins, both processes must
        # end up with the same shard width.
        def opener(q):
            # Normal exit (not os._exit): the queue's feeder thread
            # must flush the result before the process dies.
            q.put(ProofStore(tmp_path, shards=16).shards)

        ctx = multiprocessing.get_context("fork")
        q = ctx.Queue()
        procs = [ctx.Process(target=opener, args=(q,)) for _ in range(4)]
        for p in procs:
            p.start()
        got = [q.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
        assert set(got) == {16}
        assert ProofStore(tmp_path).shards == 16


class TestTornShard:
    def test_heal_on_torn_entry_under_shared_root(self, tmp_path):
        # One process's entry is torn on disk (simulated truncation);
        # another process sharing the root quarantines it and heals by
        # republishing — per-shard damage stays per-entry.
        writer = ProofStore(tmp_path, shards=16)
        writer.put(FP, "fn0", entries_for("fn0"))
        path = writer._entry_path(FP)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        other = ProofStore(tmp_path, shards=16)
        assert other.get(FP) is None
        assert STORE_STATS["quarantined"] == 1
        assert other.put(FP, "fn0", entries_for("fn0"))
        assert STORE_STATS["healed"] == 1
        assert other.get(FP) is not None
        # The torn original is kept as evidence, not deleted.
        assert len(list(other.quarantine_dir.iterdir())) == 1
