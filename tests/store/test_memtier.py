"""The store hierarchy's memory tier and write-behind buffer: LRU
semantics, the mem/disk hit split (the warm-run zero-disk-read
guarantee), read-your-writes for buffered publishes, and the flush
durability invariant — a journal record always implies a readable
entry, even under SIGKILL mid-flush."""

import multiprocessing
import os
import signal
import time

import pytest

from repro import faultinject
from repro.parallel import fork_available
from repro.store import MemTier, ProofStore, STORE_STATS

from tests.store.test_store import FP, FP2, entries_for

FP3 = "ef" + "2" * 62


class TestMemTierUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemTier(0)

    def test_lru_eviction_order(self):
        tier = MemTier(2)
        tier.put("a", [1])
        tier.put("b", [2])
        tier.put("c", [3])  # evicts "a"
        assert "a" not in tier and "b" in tier and "c" in tier
        assert tier.evictions == 1

    def test_get_refreshes_recency(self):
        tier = MemTier(2)
        tier.put("a", [1])
        tier.put("b", [2])
        assert tier.get("a") == [1]
        tier.put("c", [3])  # evicts "b", the least recently used
        assert "a" in tier and "b" not in tier

    def test_miss_is_none(self):
        assert MemTier(1).get("nope") is None

    def test_invalidate_and_len(self):
        tier = MemTier(4)
        tier.put("a", [1])
        assert len(tier) == 1
        tier.invalidate("a")
        assert len(tier) == 0
        tier.invalidate("a")  # idempotent


class TestReadThrough:
    def test_own_publish_is_memory_resident(self, tmp_path):
        store = ProofStore(tmp_path, mem=8)
        store.put(FP, "fn0", entries_for("fn0"))
        [e] = store.get(FP)
        assert e.function == "fn0"
        assert STORE_STATS["mem_hits"] == 1
        assert STORE_STATS["disk_reads"] == 0

    def test_first_read_warms_the_tier(self, tmp_path):
        ProofStore(tmp_path).put(FP, "fn0", entries_for("fn0"))
        store = ProofStore(tmp_path, mem=8)
        store.get(FP)  # cold: disk
        store.get(FP)  # warm: memory
        assert STORE_STATS["disk_hits"] == 1
        assert STORE_STATS["mem_hits"] == 1
        assert STORE_STATS["disk_reads"] == 1
        assert STORE_STATS["hits"] == 2  # total stays mem + disk

    def test_warm_run_has_zero_disk_reads(self, tmp_path):
        # The PR's acceptance gate: once resident, repeat lookups
        # never touch disk.
        store = ProofStore(tmp_path, mem=8)
        for fp, fn in ((FP, "fn0"), (FP2, "fn1")):
            store.put(fp, fn, entries_for(fn))
        before = STORE_STATS["disk_reads"]
        for _ in range(5):
            assert store.get(FP) is not None
            assert store.get(FP2) is not None
        assert STORE_STATS["disk_reads"] == before == 0

    def test_eviction_falls_back_to_disk(self, tmp_path):
        store = ProofStore(tmp_path, mem=1)
        store.put(FP, "fn0", entries_for("fn0"))
        store.put(FP2, "fn1", entries_for("fn1"))  # evicts FP
        assert store.get(FP) is not None
        assert STORE_STATS["disk_reads"] == 1

    def test_quarantine_invalidates_the_tier(self, tmp_path):
        ProofStore(tmp_path).put(FP, "fn0", entries_for("fn0"))
        store = ProofStore(tmp_path, mem=8)
        store.get(FP)  # now memory-resident
        # Corrupt the disk entry, then force a disk path via a fresh
        # store: quarantine must not leave a stale decoded copy behind
        # in any tier that saw it.
        path = store._entry_path(FP)
        path.write_bytes(path.read_bytes()[:40])
        fresh = ProofStore(tmp_path, mem=8)
        assert fresh.get(FP) is None
        assert STORE_STATS["quarantined"] == 1
        assert FP not in fresh.memtier

    def test_mem_zero_disables_the_tier(self, tmp_path):
        store = ProofStore(tmp_path, mem=0)
        assert store.memtier is None
        store.put(FP, "fn0", entries_for("fn0"))
        store.get(FP)
        assert STORE_STATS["mem_hits"] == 0
        assert STORE_STATS["disk_hits"] == 1


class TestWriteBehind:
    def test_put_buffers_until_flush(self, tmp_path):
        store = ProofStore(tmp_path, write_behind=True)
        assert store.put(FP, "fn0", entries_for("fn0"))
        assert store.pending() == 1
        assert not store._entry_path(FP).exists()
        # Not yet acknowledged to the journal either: a record would
        # claim durability the entry does not have.
        assert FP not in store.journal.completed_fingerprints()

    def test_read_your_buffered_writes(self, tmp_path):
        store = ProofStore(tmp_path, write_behind=True)
        store.put(FP, "fn0", entries_for("fn0"))
        [e] = store.get(FP)
        assert e.function == "fn0"
        assert STORE_STATS["mem_hits"] == 1
        assert store.has(FP)

    def test_flush_makes_durable_then_journals(self, tmp_path):
        store = ProofStore(tmp_path, write_behind=True)
        store.put(FP, "fn0", entries_for("fn0"))
        store.put(FP2, "fn1", entries_for("fn1"))
        assert store.flush() == 2
        assert store.pending() == 0
        assert store._entry_path(FP).exists()
        completed = store.journal.completed_fingerprints()
        assert FP in completed and FP2 in completed
        assert STORE_STATS["wb_flushes"] == 1
        # And a fresh process reads them straight off disk.
        fresh = ProofStore(tmp_path)
        assert fresh.get(FP) is not None

    def test_end_run_flushes(self, tmp_path):
        store = ProofStore(tmp_path, write_behind=True)
        store.begin_run(["fn0"])
        store.put(FP, "fn0", entries_for("fn0"))
        store.end_run()
        assert store.pending() == 0
        assert store._entry_path(FP).exists()

    def test_flush_on_empty_buffer_is_free(self, tmp_path):
        store = ProofStore(tmp_path, write_behind=True)
        assert store.flush() == 0
        assert STORE_STATS["wb_flushes"] == 0

    def test_forked_worker_writes_through(self, tmp_path):
        # A worker's buffer would die with its process; workers must
        # publish durably even on a write-behind store.
        store = ProofStore(tmp_path, write_behind=True)

        def child():
            store.put(FP, "fn0", entries_for("fn0"))
            os._exit(0)

        p = multiprocessing.get_context("fork").Process(target=child)
        p.start()
        p.join(timeout=30)
        assert p.exitcode == 0
        assert store._entry_path(FP).exists()


@pytest.mark.skipif(
    not fork_available(), reason="durability tests fork a victim process"
)
class TestFlushDurability:
    def _fork(self, target):
        """A raw ``os.fork`` victim: unlike a multiprocessing child it
        has no multiprocessing parent, so the store treats it as the
        *main* process and write-behind buffering actually engages."""
        pid = os.fork()
        if pid == 0:
            try:
                target()
            finally:
                os._exit(0)
        return pid

    def _kill(self, pid):
        os.kill(pid, signal.SIGKILL)
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        assert os.WTERMSIG(status) == signal.SIGKILL

    def test_sigkill_before_flush_loses_only_unacknowledged(self, tmp_path):
        """Buffered-but-never-flushed publishes may die with the
        process; everything a flush checkpoint acknowledged must
        survive."""

        def victim():
            store = ProofStore(tmp_path, write_behind=True)
            store.put(FP, "fn0", entries_for("fn0"))
            store.put(FP2, "fn1", entries_for("fn1"))
            store.flush()  # the checkpoint: fn0/fn1 acknowledged
            store.put(FP3, "fn2", entries_for("fn2"))
            (tmp_path / "checkpointed").touch()
            time.sleep(60)  # hold the buffer; the parent kills us

        pid = self._fork(victim)
        deadline = time.monotonic() + 60
        while not (tmp_path / "checkpointed").exists():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        self._kill(pid)

        store = ProofStore(tmp_path)
        completed = store.journal.completed_fingerprints()
        assert sorted(completed.values()) == ["fn0", "fn1"]
        assert store.get(FP) is not None
        assert store.get(FP2) is not None
        # fn2 was buffered, never acknowledged: gone, and — crucially —
        # not claimed by any journal record.
        assert FP3 not in completed
        assert store.get(FP3) is None

    def test_sigkill_mid_flush_never_journals_unwritten(self, tmp_path):
        """Kill delivered *inside* flush, while an entry write is in
        flight: entries flushed before the kill are journalled and
        readable; the in-flight and queued ones have no record."""

        def victim():
            faultinject.install("store.write@fn1:delay:30")
            store = ProofStore(tmp_path, write_behind=True)
            store.put(FP, "fn0", entries_for("fn0"))
            store.put(FP2, "fn1", entries_for("fn1"))
            store.put(FP3, "fn2", entries_for("fn2"))
            store.flush()  # writes fn0, stalls inside fn1's write
            os._exit(0)

        pid = self._fork(victim)
        journal = ProofStore(tmp_path).journal
        deadline = time.monotonic() + 60
        while FP not in journal.completed_fingerprints():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        self._kill(pid)

        completed = ProofStore(tmp_path).journal.completed_fingerprints()
        readable = ProofStore(tmp_path)
        # The invariant under test: every journalled fingerprint is
        # readable (entry-before-record ordering), no torn entries.
        for fp in completed:
            assert readable.get(fp) is not None
        assert FP in completed
        assert FP2 not in completed and FP3 not in completed
        assert STORE_STATS["corrupt"] == 0
