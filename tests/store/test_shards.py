"""The sharded on-disk layout: prefix widths, the ``layout.json``
stamp (which beats the knob — processes sharing a root must agree),
transparent migration of pre-stamp stores, the legacy-path fallback,
and the ``REPRO_CACHE_*`` tier knobs."""

import json

import pytest

from repro.store import (
    DEFAULT_SHARDS,
    LAYOUT_FILENAME,
    ProofStore,
    STORE_STATS,
    tier_kwargs_from_env,
)

from tests.store.test_store import FP, FP2, entries_for


def layout(root):
    return json.loads((root / LAYOUT_FILENAME).read_text())


class TestLayouts:
    def test_default_is_256_shards_width_2(self, tmp_path):
        store = ProofStore(tmp_path)
        assert store.shards == DEFAULT_SHARDS == 256
        store.put(FP, "fn0", entries_for("fn0"))
        assert (store.entries_dir / FP[:2] / f"{FP}.json").exists()
        assert layout(tmp_path) == {"version": 1, "shards": 256}

    @pytest.mark.parametrize(
        "shards,width", [(1, 0), (16, 1), (256, 2), (4096, 3)]
    )
    def test_prefix_width_per_shard_count(self, tmp_path, shards, width):
        store = ProofStore(tmp_path, shards=shards)
        store.put(FP, "fn0", entries_for("fn0"))
        rel = store._entry_path(FP).relative_to(store.entries_dir)
        parts = rel.parts
        if width == 0:
            assert parts == (f"{FP}.json",)
        else:
            assert parts == (FP[:width], f"{FP}.json")
        assert store.get(FP) is not None

    def test_invalid_shard_count_raises(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ProofStore(tmp_path, shards=17)

    def test_stamp_beats_the_knob(self, tmp_path):
        first = ProofStore(tmp_path, shards=16)
        first.put(FP, "fn0", entries_for("fn0"))
        # A second opener asking for a different count gets the
        # stamped layout — and therefore finds the entry.
        second = ProofStore(tmp_path, shards=4096)
        assert second.shards == 16
        assert second.get(FP) is not None

    def test_corrupt_stamp_is_rewritten(self, tmp_path):
        ProofStore(tmp_path)
        (tmp_path / LAYOUT_FILENAME).write_text("not json {")
        store = ProofStore(tmp_path, shards=16)
        assert store.shards == 16
        assert layout(tmp_path)["shards"] == 16


class TestMigration:
    def seed_legacy(self, tmp_path, pairs):
        """A pre-stamp store: fixed ``fp[:2]`` layout, no layout.json
        (what every store looked like before sharding was tunable)."""
        store = ProofStore(tmp_path)  # width 2 = the legacy layout
        for fp, fn in pairs:
            store.put(fp, fn, entries_for(fn))
        (tmp_path / LAYOUT_FILENAME).unlink()

    def test_flat_open_migrates_legacy_entries(self, tmp_path):
        self.seed_legacy(tmp_path, [(FP, "fn0"), (FP2, "fn1")])
        store = ProofStore(tmp_path, shards=1)
        assert STORE_STATS["migrated"] == 2
        assert (store.entries_dir / f"{FP}.json").exists()
        assert not (store.entries_dir / FP[:2]).exists()  # dirs pruned
        assert store.get(FP) is not None
        assert store.get(FP2) is not None

    def test_wider_open_migrates_too(self, tmp_path):
        self.seed_legacy(tmp_path, [(FP, "fn0")])
        store = ProofStore(tmp_path, shards=4096)
        assert STORE_STATS["migrated"] == 1
        assert (store.entries_dir / FP[:3] / f"{FP}.json").exists()
        assert store.get(FP) is not None

    def test_default_open_is_migration_free(self, tmp_path):
        # 256 shards IS the legacy width: adopting the default layout
        # must not touch a single file.
        self.seed_legacy(tmp_path, [(FP, "fn0")])
        path = tmp_path / "entries" / FP[:2] / f"{FP}.json"
        mtime = path.stat().st_mtime_ns
        store = ProofStore(tmp_path)
        assert STORE_STATS["migrated"] == 0
        assert path.stat().st_mtime_ns == mtime
        assert store.get(FP) is not None

    def test_legacy_fallback_relocates_stragglers(self, tmp_path):
        # An old writer publishes into fp[:2] *after* this root was
        # stamped flat: the miss path probes the legacy location and
        # relocates what it finds.
        store = ProofStore(tmp_path, shards=1)
        donor_root = tmp_path / "donor"
        donor = ProofStore(donor_root, shards=1)
        donor.put(FP, "fn0", entries_for("fn0"))
        legacy = store.entries_dir / FP[:2] / f"{FP}.json"
        legacy.parent.mkdir(parents=True)
        (donor.entries_dir / f"{FP}.json").rename(legacy)

        migrated_before = STORE_STATS["migrated"]
        assert store.get(FP) is not None
        assert STORE_STATS["migrated"] == migrated_before + 1
        assert not legacy.exists()
        assert (store.entries_dir / f"{FP}.json").exists()
        assert store.has(FP)

    def test_has_sees_legacy_entries_without_moving_them(self, tmp_path):
        store = ProofStore(tmp_path, shards=1)
        donor = ProofStore(tmp_path / "donor", shards=1)
        donor.put(FP, "fn0", entries_for("fn0"))
        legacy = store.entries_dir / FP[:2] / f"{FP}.json"
        legacy.parent.mkdir(parents=True)
        (donor.entries_dir / f"{FP}.json").rename(legacy)
        assert store.has(FP)
        assert legacy.exists()  # has() is a probe, not a migration


class TestEnvKnobs:
    def test_defaults(self):
        kw = tier_kwargs_from_env({})
        assert kw == {"shards": None, "mem": 256, "write_behind": True}

    def test_explicit_values(self):
        kw = tier_kwargs_from_env(
            {
                "REPRO_CACHE_SHARDS": "16",
                "REPRO_CACHE_MEM": "8",
                "REPRO_CACHE_WB": "0",
            }
        )
        assert kw == {"shards": 16, "mem": 8, "write_behind": False}

    def test_invalid_shards_warns_and_defaults(self):
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_SHARDS"):
            kw = tier_kwargs_from_env({"REPRO_CACHE_SHARDS": "17"})
        assert kw["shards"] is None

    def test_mem_zero_disables_tier(self, tmp_path):
        store = ProofStore(tmp_path, **tier_kwargs_from_env(
            {"REPRO_CACHE_MEM": "0"}
        ))
        assert store.memtier is None

    def test_from_env_builds_the_hierarchy(self, tmp_path):
        store = ProofStore.from_env(
            {
                "REPRO_CACHE": "1",
                "REPRO_CACHE_DIR": str(tmp_path / "cache"),
                "REPRO_CACHE_SHARDS": "16",
                "REPRO_CACHE_MEM": "32",
            }
        )
        assert store is not None
        assert store.shards == 16
        assert store.memtier is not None and store.memtier.capacity == 32
        assert store.write_behind
