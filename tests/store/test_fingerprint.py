"""Fingerprint stability and sensitivity.

The store is only as sound as its keys: a fingerprint must be
*stable* across processes and rebuilds of the same program (else the
cache never hits) and *sensitive* to every input the proof depends on
(else it serves stale proofs). Both directions are tested here.
"""

from repro.budget import BudgetSpec
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import U64, UNIT
from repro.store import canon, function_fingerprint, logic_digest

from tests.robustness.conftest import FAST_FNS, _fast_body


def build(ret_const: int = 0):
    program = Program()
    for n in FAST_FNS:
        program.add_body(_fast_body(n))
    fn = BodyBuilder("caller", params=[("x", U64)], ret=U64)
    bb0 = fn.block()
    bb1 = fn.block("bb1")
    r = fn.local("r", U64)
    bb0.call(r, "fn0", [fn.copy("x")], bb1)
    bb1.assign(
        fn.ret_place, fn.binop("add", fn.copy(r), fn.const_int(ret_const, U64))
    )
    bb1.ret()
    program.add_body(fn.finish())
    return program


def fp(program, name="caller", **kw):
    return function_fingerprint(name, program=program, **kw)


class TestStability:
    def test_same_program_same_fingerprint(self):
        assert fp(build()) == fp(build())

    def test_stable_across_unrelated_fresh_vars(self):
        # Global fresh-variable counters must not leak into the key:
        # burning a few thousand between builds changes nothing.
        a = fp(build())
        from repro.solver.sorts import INT
        from repro.solver.terms import fresh_var

        for _ in range(1000):
            fresh_var("noise", INT)
        assert fp(build()) == a

    def test_logic_digest_ignores_lazy_own_predicates(self, env):
        # Verification synthesises own:*/mutref_inv:* predicates on
        # demand; the digest must not depend on which proofs ran.
        program, ownables = env
        before = logic_digest(program, ownables)
        ownables.ensure_own(U64)
        assert "own:u64" in program.predicates
        assert logic_digest(program, ownables) == before

    def test_canon_scrubs_addresses_and_counters_in_reprs(self):
        class Opaque:
            pass

        a, b = canon(Opaque()), canon(Opaque())
        assert a == b  # differing 0x addresses scrubbed
        assert canon(Opaque()) != canon(object())  # ...but not the type


class TestSensitivity:
    def test_body_change_changes_fingerprint(self):
        assert fp(build(0)) != fp(build(1))

    def test_plain_strings_hash_verbatim(self):
        # Spec source fragments are data: two contracts differing only
        # in a hex constant or a '#N' fragment must not collide.
        assert canon("x@ < 0x10") != canon("x@ < 0x20")
        assert canon("sv_x#17") != canon("sv_x#99")

    def test_deep_structures_hash_their_leaves(self):
        # No depth cap: graphs that differ only far below the surface
        # must still canonicalise differently (truncating to a constant
        # token made every deep contract collide — a stale-hit vector).
        def nest(leaf, levels):
            for _ in range(levels):
                leaf = {"ensures": [leaf]}
            return leaf

        assert canon(nest("a", 40)) != canon(nest("b", 40))
        assert canon(nest("a", 40)) == canon(nest("a", 40))
        assert canon(nest("a", 40)) != canon(nest("a", 41))

    def test_deep_pearlite_spec_leaves_distinguish(self):
        # Regression: PearliteSpec ensures terms nested beyond the old
        # depth cap of 12 used to truncate to a constant token, so two
        # contracts differing only in a deep leaf constant collided —
        # and a changed contract replayed the stale cached verdict.
        from repro.pearlite.ast import PBin, PInt, PearliteSpec

        def deep_spec(leaf):
            t = PInt(leaf)
            for _ in range(14):
                t = PBin("+", t, PInt(0))
            return PearliteSpec(ensures=(t,))

        assert canon(deep_spec(1)) != canon(deep_spec(2))
        assert canon(deep_spec(1)) == canon(deep_spec(1))

    def test_very_deep_structures_do_not_overflow(self):
        deep = "leaf"
        for _ in range(50_000):
            deep = [deep]
        assert canon(deep).endswith("s:leaf|" + "]|" * 49_999 + "]")

    def test_deep_cycles_are_detected(self):
        loop: list = ["x"]
        loop.append(loop)
        assert "<cycle>" in canon(loop)
        assert canon(loop) == canon(loop)

    def test_own_contract_changes_fingerprint(self):
        p = build()
        base = fp(p)
        with_contract = fp(p, contracts={"caller": {"ensures": ["result@ >= 0"]}})
        assert base != with_contract

    def test_callee_contract_changes_fingerprint(self):
        # The axioms a proof assumes are part of its identity: a new
        # contract on callee fn0 must invalidate caller's entry...
        p = build()
        base = fp(p)
        assert base != fp(p, contracts={"fn0": {"ensures": ["result@ == x@"]}})
        # ...but a contract on an unrelated function must not.
        assert base == fp(p, contracts={"fn3": {"ensures": ["true"]}})

    def test_budget_changes_fingerprint(self):
        p = build()
        assert fp(p, budget=BudgetSpec(max_branches=10)) != fp(
            p, budget=BudgetSpec(max_branches=1000)
        )
        assert fp(p, budget=BudgetSpec(max_branches=10)) == fp(
            p, budget=BudgetSpec(max_branches=10)
        )

    def test_encoder_config_changes_fingerprint(self):
        p = build()
        assert fp(p, auto_extract=True) != fp(p, auto_extract=False)
        assert fp(p, manual_pure_pre={"caller": ["x@ < 100"]}) != fp(p)

    def test_functions_do_not_share_fingerprints(self):
        p = build()
        fps = {function_fingerprint(n, program=p) for n in p.bodies}
        assert len(fps) == len(p.bodies)
