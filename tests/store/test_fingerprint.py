"""Fingerprint stability and sensitivity.

The store is only as sound as its keys: a fingerprint must be
*stable* across processes and rebuilds of the same program (else the
cache never hits) and *sensitive* to every input the proof depends on
(else it serves stale proofs). Both directions are tested here.
"""

from repro.budget import BudgetSpec
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import U64, UNIT
from repro.store import canon, function_fingerprint, logic_digest

from tests.robustness.conftest import FAST_FNS, _fast_body


def build(ret_const: int = 0):
    program = Program()
    for n in FAST_FNS:
        program.add_body(_fast_body(n))
    fn = BodyBuilder("caller", params=[("x", U64)], ret=U64)
    bb0 = fn.block()
    bb1 = fn.block("bb1")
    r = fn.local("r", U64)
    bb0.call(r, "fn0", [fn.copy("x")], bb1)
    bb1.assign(
        fn.ret_place, fn.binop("add", fn.copy(r), fn.const_int(ret_const, U64))
    )
    bb1.ret()
    program.add_body(fn.finish())
    return program


def fp(program, name="caller", **kw):
    return function_fingerprint(name, program=program, **kw)


class TestStability:
    def test_same_program_same_fingerprint(self):
        assert fp(build()) == fp(build())

    def test_stable_across_unrelated_fresh_vars(self):
        # Global fresh-variable counters must not leak into the key:
        # burning a few thousand between builds changes nothing.
        a = fp(build())
        from repro.solver.sorts import INT
        from repro.solver.terms import fresh_var

        for _ in range(1000):
            fresh_var("noise", INT)
        assert fp(build()) == a

    def test_logic_digest_ignores_lazy_own_predicates(self, env):
        # Verification synthesises own:*/mutref_inv:* predicates on
        # demand; the digest must not depend on which proofs ran.
        program, ownables = env
        before = logic_digest(program, ownables)
        ownables.ensure_own(U64)
        assert "own:u64" in program.predicates
        assert logic_digest(program, ownables) == before

    def test_canon_scrubs_addresses_and_counters(self):
        class Opaque:
            pass

        a, b = canon(Opaque()), canon(Opaque())
        assert a == b  # differing 0x addresses scrubbed
        assert canon("sv_x#17") == canon("sv_x#99")  # fresh counters


class TestSensitivity:
    def test_body_change_changes_fingerprint(self):
        assert fp(build(0)) != fp(build(1))

    def test_own_contract_changes_fingerprint(self):
        p = build()
        base = fp(p)
        with_contract = fp(p, contracts={"caller": {"ensures": ["result@ >= 0"]}})
        assert base != with_contract

    def test_callee_contract_changes_fingerprint(self):
        # The axioms a proof assumes are part of its identity: a new
        # contract on callee fn0 must invalidate caller's entry...
        p = build()
        base = fp(p)
        assert base != fp(p, contracts={"fn0": {"ensures": ["result@ == x@"]}})
        # ...but a contract on an unrelated function must not.
        assert base == fp(p, contracts={"fn3": {"ensures": ["true"]}})

    def test_budget_changes_fingerprint(self):
        p = build()
        assert fp(p, budget=BudgetSpec(max_branches=10)) != fp(
            p, budget=BudgetSpec(max_branches=1000)
        )
        assert fp(p, budget=BudgetSpec(max_branches=10)) == fp(
            p, budget=BudgetSpec(max_branches=10)
        )

    def test_encoder_config_changes_fingerprint(self):
        p = build()
        assert fp(p, auto_extract=True) != fp(p, auto_extract=False)
        assert fp(p, manual_pure_pre={"caller": ["x@ < 100"]}) != fp(p)

    def test_functions_do_not_share_fingerprints(self):
        p = build()
        fps = {function_fingerprint(n, program=p) for n in p.bodies}
        assert len(fps) == len(p.bodies)
