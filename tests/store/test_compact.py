"""Journal compaction: a long-lived daemon's journal must not grow
without bound. ``compact()`` keeps only records newer than the last
complete checkpoint (the final ``run/end`` record); the rewrite is
atomic and a torn compact write degrades to a skipped tail line, like
any other torn journal tail.
"""

from repro import faultinject
from repro.store.journal import Journal


def _filled_journal(tmp_path):
    j = Journal(tmp_path / "journal.jsonl")
    j.append({"kind": "run", "event": "begin", "functions": 2})
    j.append({"kind": "entry", "fn": "fn0", "fp": "a" * 8, "statuses": ["verified"]})
    j.append({"kind": "entry", "fn": "fn1", "fp": "b" * 8, "statuses": ["verified"]})
    j.append({"kind": "run", "event": "end"})
    return j


class TestCompact:
    def test_drops_everything_up_to_the_last_checkpoint(self, tmp_path):
        j = _filled_journal(tmp_path)
        out = j.compact()
        assert out == {"kept": 0, "dropped": 4}
        assert j.read() == []
        assert j.bad_lines == 0

    def test_keeps_records_after_the_checkpoint(self, tmp_path):
        j = _filled_journal(tmp_path)
        # An interrupted run started after the checkpoint: its records
        # are the live resume set and must survive compaction.
        j.append({"kind": "run", "event": "begin", "functions": 2})
        j.append({"kind": "entry", "fn": "fn2", "fp": "c" * 8, "statuses": ["verified"]})
        out = j.compact()
        assert out == {"kept": 2, "dropped": 4}
        assert j.completed_fingerprints() == {"c" * 8: "fn2"}
        assert j.interrupted_runs() == 1

    def test_no_checkpoint_is_a_no_op(self, tmp_path):
        j = Journal(tmp_path / "journal.jsonl")
        j.append({"kind": "run", "event": "begin", "functions": 1})
        j.append({"kind": "entry", "fn": "fn0", "fp": "a" * 8, "statuses": ["verified"]})
        before = j.path.read_bytes()
        assert j.compact() == {"kept": 2, "dropped": 0}
        assert j.path.read_bytes() == before

    def test_missing_journal_is_a_no_op(self, tmp_path):
        j = Journal(tmp_path / "journal.jsonl")
        assert j.compact() == {"kept": 0, "dropped": 0}
        assert not j.path.exists()

    def test_compact_then_append_then_compact_again(self, tmp_path):
        j = _filled_journal(tmp_path)
        j.compact()
        j.append({"kind": "run", "event": "begin", "functions": 1})
        j.append({"kind": "entry", "fn": "fn9", "fp": "d" * 8, "statuses": ["verified"]})
        j.append({"kind": "run", "event": "end"})
        assert j.compact() == {"kept": 0, "dropped": 3}

    def test_torn_tail_during_compact(self, tmp_path):
        """A crash (or torn write) mid-compact loses at most the tail
        line of the rewritten journal — earlier kept records stay
        valid, nothing misparses, and resume degrades to fewer
        records, never wrong ones."""
        j = _filled_journal(tmp_path)
        j.append({"kind": "run", "event": "begin", "functions": 2})
        j.append({"kind": "entry", "fn": "fn2", "fp": "c" * 8, "statuses": ["verified"]})
        j.append({"kind": "entry", "fn": "fn3", "fp": "e" * 8, "statuses": ["verified"]})
        full = b"".join(
            Journal._encode(r) for r in j.read()[4:]
        )
        # Tear the compacted image mid-way through its final record.
        faultinject.install(f"store.compact:torn:{len(full) - 10}")
        try:
            j.compact()
        finally:
            faultinject.clear()
        records = j.read()
        assert j.bad_lines == 1  # the torn tail line, detected+skipped
        assert [r.get("fn") for r in records if r.get("kind") == "entry"] == ["fn2"]
        assert j.interrupted_runs() == 1
        # Still appendable: the torn tail has no newline, so the next
        # append merges into it and is lost with it (one extra record —
        # the known cost of a torn tail); the one after lands clean.
        j.append({"kind": "run", "event": "end"})
        j.append({"kind": "run", "event": "end"})
        j.read()
        assert j.bad_lines == 1
        assert j.compact()["kept"] == 0
