"""Fixtures for the proof-store suite.

Reuses the robustness suite's synthetic program (fast to verify,
exercises the full pipeline surface) and adds counter/fault hygiene:
every test starts with zeroed ``STORE_STATS`` and a clean fault table.
"""

import pytest

from repro import faultinject
from repro.gilsonite.ownable import OwnableRegistry
from repro.lang.mir import Program
from repro.store import reset_store_stats

from tests.robustness.conftest import FAST_FNS, _diverging_body, _fast_body


@pytest.fixture()
def env():
    """A fresh program per test: store tests mutate verifier state and
    must not leak lazily-synthesised predicates into each other."""
    program = Program()
    for n in FAST_FNS:
        program.add_body(_fast_body(n))
    program.add_body(_diverging_body())
    return program, OwnableRegistry(program)


@pytest.fixture(autouse=True)
def clean_counters_and_faults():
    reset_store_stats()
    faultinject.clear()
    yield
    faultinject.clear()
    reset_store_stats()
