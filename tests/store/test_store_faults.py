"""Injected store faults: torn writes, bit-flips, transient and
persistent I/O errors — each must degrade (retry, quarantine, heal,
re-verify), never crash a run or serve a wrong answer."""

import pytest

from repro import faultinject
from repro.hybrid.pipeline import HybridVerifier
from repro.store import ProofStore, STORE_STATS

from tests.robustness.conftest import FAST_FNS, fingerprint
from tests.store.test_store import FP, entries_for, entry_file


def make_verifier(env, tmp_path, **kw):
    program, ownables = env
    return HybridVerifier(
        program, ownables, {}, store=ProofStore(tmp_path, **kw)
    )


class TestIoErrors:
    def test_transient_write_error_retried(self, tmp_path):
        store = ProofStore(tmp_path)
        faultinject.install("store.write:ioerror::1")  # first attempt only
        assert store.put(FP, "fn0", entries_for("fn0"))
        assert STORE_STATS["io_retries"] == 1
        assert STORE_STATS["io_errors"] == 0
        assert store.get(FP) is not None

    def test_persistent_write_error_swallowed(self, tmp_path):
        store = ProofStore(tmp_path)
        faultinject.install("store.write:ioerror")
        assert not store.put(FP, "fn0", entries_for("fn0"))
        assert STORE_STATS["io_errors"] == 1
        assert STORE_STATS["io_retries"] >= 2
        assert not entry_file(store, FP).exists()

    def test_persistent_read_error_is_a_miss(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(FP, "fn0", entries_for("fn0"))
        faultinject.install("store.read:ioerror")
        assert store.get(FP) is None
        assert STORE_STATS["io_errors"] == 1

    def test_pipeline_survives_unwritable_store(self, env, tmp_path):
        faultinject.install("store.write:ioerror")
        report = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert report.ok
        assert report.store_stats["io_errors"] == len(FAST_FNS)
        assert report.store_stats["stores"] == 0


class TestTornWriteAndBitflip:
    def test_count_limited_torn_write_heals_then_succeeds(self, env, tmp_path):
        """The acceptance scenario: exactly one torn write; the next
        run detects it, quarantines, re-verifies that one function,
        republishes — and the third run is all hits."""
        faultinject.install("store.write@fn1:torn::1")
        cold = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert cold.ok and cold.store_stats["stores"] == len(FAST_FNS)
        faultinject.clear()

        heal = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert fingerprint(heal) == fingerprint(cold)
        assert heal.store_stats == dict(
            heal.store_stats,
            hits=len(FAST_FNS) - 1, misses=1, corrupt=1,
            quarantined=1, stores=1, healed=1,
        )

        warm = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert fingerprint(warm) == fingerprint(cold)
        assert warm.store_stats["hits"] == len(FAST_FNS)
        assert warm.store_stats["misses"] == 0

    def test_bitflip_write_detected_on_read(self, env, tmp_path):
        faultinject.install("store.write@fn2:bitflip")
        cold = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert cold.ok
        faultinject.clear()
        heal = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert heal.ok and fingerprint(heal) == fingerprint(cold)
        assert heal.store_stats["corrupt"] == 1
        assert heal.store_stats["quarantined"] == 1

    def test_strict_mode_surfaces_error_entry_without_crashing(
        self, env, tmp_path
    ):
        faultinject.install("store.write@fn1:bitflip::1")
        cold = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert cold.ok
        faultinject.clear()
        report = make_verifier(env, tmp_path, verify_mode="strict").run(
            FAST_FNS, jobs=1
        )
        by_fn = {e.function: e for e in report.entries}
        assert by_fn["fn1"].status == "error"
        assert "checksum" in by_fn["fn1"].note
        others = [e for e in fingerprint(report) if e[0] != "fn1"]
        assert others == [e for e in fingerprint(cold) if e[0] != "fn1"]
        assert report.status == "error"  # degraded, never raised


class TestGrammar:
    def test_new_actions_parse(self):
        rules = faultinject.parse(
            "store.write@fn1:torn::1, store.read:ioerror, store.write:bitflip:7"
        )
        assert [r.action for r in rules] == ["torn", "ioerror", "bitflip"]
        assert rules[0].remaining == 1
        assert rules[2].arg == "7"

    def test_data_action_arg_must_be_int(self):
        with pytest.raises(ValueError, match="byte offset"):
            faultinject.parse("store.write:torn:half")

    def test_fire_ignores_data_actions(self):
        faultinject.install("store.write:torn")
        faultinject.fire("store.write", "fn0")  # inert through fire()
        assert faultinject._rules[0].remaining is None

    def test_corrupt_ignores_control_actions(self):
        faultinject.install("store.write:ioerror")
        data = b"x" * 64
        assert faultinject.corrupt("store.write", "fn0", data) == data

    def test_corrupt_torn_truncates(self):
        faultinject.install("store.write:torn:10")
        assert faultinject.corrupt("store.write", "f", b"y" * 64) == b"y" * 10

    def test_corrupt_bitflip_flips_one_bit(self):
        faultinject.install("store.write:bitflip:3")
        out = faultinject.corrupt("store.write", "f", b"\x00" * 8)
        assert out == b"\x00\x00\x00\x01\x00\x00\x00\x00"

    def test_corrupt_count_exhausts(self):
        faultinject.install("store.write:torn::1")
        assert faultinject.corrupt("store.write", "f", b"z" * 8) == b"z" * 4
        assert faultinject.corrupt("store.write", "f", b"z" * 8) == b"z" * 8

    def test_ioerror_fires(self):
        faultinject.install("s:ioerror:disk full")
        with pytest.raises(OSError, match="disk full"):
            faultinject.fire("s")
