"""The plain-data entry codec: faithful round-trips for every result
shape the pipeline produces, and hard ValueError rejection of anything
else — a cache file is untrusted input, so decoding must reconstruct
known dataclasses field-by-field and never execute content (the reason
the store does not pickle)."""

import json

import pytest

from repro.creusot.vcgen import CreusotIssue, CreusotResult
from repro.gillian.engine import VerificationIssue
from repro.gillian.matcher import TacticStats
from repro.gillian.verifier import VerificationResult
from repro.hybrid.pipeline import HybridEntry
from repro.store.codec import decode_entries, encode_entries


def creusot_entry():
    return HybridEntry(
        "push", "creusot", ok=True,
        detail=CreusotResult(
            "push", True,
            issues=[CreusotIssue("push", "bb2", "overflow")],
            elapsed=0.25, branches=3, vcs=7,
        ),
        note="7 VCs",
    )


def gillian_entry():
    return HybridEntry(
        "pop", "gillian-rust", ok=False,
        detail=VerificationResult(
            "pop", "show_safety", ok=False,
            issues=[VerificationIssue("pop", "bb0", "leak")],
            elapsed=1.5, branches=9,
            stats=TacticStats(unfolds=2, folds=1, repairs=4),
            status="refuted",
        ),
        status="refuted",
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "entry",
        [
            creusot_entry(),
            gillian_entry(),
            HybridEntry("id", "gillian-rust", ok=True, detail=None, note="n"),
        ],
        ids=["creusot", "gillian", "no-detail"],
    )
    def test_entry_survives(self, entry):
        [back] = decode_entries(
            json.loads(json.dumps(encode_entries([entry])))
        )
        assert back == entry

    def test_payload_is_json_safe(self):
        blob = json.dumps(encode_entries([creusot_entry(), gillian_entry()]))
        assert isinstance(json.loads(blob), list)


class TestRejection:
    def test_unencodable_detail_raises(self):
        entry = HybridEntry("f", "creusot", ok=True, detail=object())
        with pytest.raises(ValueError, match="not encodable"):
            encode_entries([entry])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("function"),
            lambda d: d.__setitem__("ok", "yes"),
            lambda d: d.__setitem__("detail", "creusot"),
            lambda d: d.__setitem__("detail", {"type": "creusot"}),
            lambda d: d.__setitem__("detail", {"type": "pickle"}),
            lambda d: d["detail"].__setitem__("issues", "none"),
            lambda d: d["detail"].__setitem__("vcs", True),
            lambda d: d["detail"].__setitem__("elapsed", "fast"),
        ],
    )
    def test_malformed_records_raise(self, mutate):
        [record] = encode_entries([creusot_entry()])
        mutate(record)
        with pytest.raises(ValueError):
            decode_entries([record])

    def test_gillian_stats_shape_enforced(self):
        [record] = encode_entries([gillian_entry()])
        record["detail"]["stats"]["__reduce__"] = 1
        with pytest.raises(ValueError, match="stats"):
            decode_entries([record])

    def test_non_list_payload_raises(self):
        with pytest.raises(ValueError, match="entry list"):
            decode_entries({"surprise": 1})
