"""The store wired through HybridVerifier.run: cold → warm behaviour,
env activation, parallel lookup, and the cacheability boundary."""

import pytest

from repro.budget import BudgetSpec
from repro.hybrid.pipeline import HybridVerifier
from repro.store import ProofStore

from tests.robustness.conftest import DIVERGING, FAST_FNS, fingerprint


def make_verifier(env, tmp_path=None, **kw):
    program, ownables = env
    store = ProofStore(tmp_path) if tmp_path is not None else None
    return HybridVerifier(program, ownables, {}, store=store, **kw)


class TestColdWarm:
    def test_warm_run_is_all_hits_and_identical(self, env, tmp_path):
        cold = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert cold.store_stats["misses"] == len(FAST_FNS)
        assert cold.store_stats["stores"] == len(FAST_FNS)
        warm = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        assert warm.store_stats["hits"] == len(FAST_FNS)
        assert warm.store_stats["misses"] == 0
        assert fingerprint(warm) == fingerprint(cold)

    def test_warm_run_survives_rebuilt_program(self, env, tmp_path):
        """A fresh process rebuilds Program objects from scratch; only
        content may key the cache, never object identity."""
        from tests.robustness.conftest import _diverging_body, _fast_body
        from repro.gilsonite.ownable import OwnableRegistry
        from repro.lang.mir import Program

        cold = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        rebuilt = Program()
        for n in FAST_FNS:
            rebuilt.add_body(_fast_body(n))
        rebuilt.add_body(_diverging_body())
        warm = HybridVerifier(
            rebuilt, OwnableRegistry(rebuilt), {},
            store=ProofStore(tmp_path),
        ).run(FAST_FNS, jobs=1)
        assert warm.store_stats["hits"] == len(FAST_FNS)
        assert fingerprint(warm) == fingerprint(cold)

    def test_parallel_warm_run_hits(self, env, tmp_path):
        cold = make_verifier(env, tmp_path).run(FAST_FNS, jobs=2)
        assert cold.store_stats["stores"] == len(FAST_FNS)
        warm = make_verifier(env, tmp_path).run(FAST_FNS, jobs=2)
        assert warm.store_stats["hits"] == len(FAST_FNS)
        assert fingerprint(warm) == fingerprint(cold)

    def test_render_shows_store_line(self, env, tmp_path):
        make_verifier(env, tmp_path).run(FAST_FNS, jobs=1)
        rendered = make_verifier(env, tmp_path).run(FAST_FNS, jobs=1).render()
        assert f"-- store: {len(FAST_FNS)} hits, 0 misses" in rendered

    def test_no_store_no_stats_no_render_line(self, env):
        report = make_verifier(env).run(FAST_FNS, jobs=1)
        assert report.store_stats == {}
        assert "-- store:" not in report.render()


class TestCacheability:
    def test_timeouts_reverify_while_fast_fns_hit(self, env, tmp_path):
        spec = BudgetSpec(max_steps=50)
        cold = make_verifier(env, tmp_path, budget=spec).run(
            FAST_FNS + [DIVERGING], jobs=1
        )
        assert cold.store_stats["skipped"] == 1  # the timeout
        assert cold.store_stats["stores"] == len(FAST_FNS)
        warm = make_verifier(env, tmp_path, budget=spec).run(
            FAST_FNS + [DIVERGING], jobs=1
        )
        assert warm.store_stats["hits"] == len(FAST_FNS)
        assert warm.store_stats["misses"] == 1  # re-verified, not replayed
        assert fingerprint(warm) == fingerprint(cold)

    def test_budget_change_invalidates(self, env, tmp_path):
        make_verifier(env, tmp_path, budget=BudgetSpec(max_steps=500)).run(
            FAST_FNS, jobs=1
        )
        report = make_verifier(
            env, tmp_path, budget=BudgetSpec(max_steps=501)
        ).run(FAST_FNS, jobs=1)
        assert report.store_stats["hits"] == 0
        assert report.store_stats["misses"] == len(FAST_FNS)

    def test_contract_change_invalidates_only_that_function(
        self, env, tmp_path
    ):
        program, ownables = env
        HybridVerifier(program, ownables, {}, store=ProofStore(tmp_path)).run(
            FAST_FNS, jobs=1
        )
        contracts = {"fn1": {"ensures": ["result@ >= 0"]}}
        report = HybridVerifier(
            program, ownables, contracts, store=ProofStore(tmp_path)
        ).run(FAST_FNS, jobs=1)
        assert report.store_stats["hits"] == len(FAST_FNS) - 1
        assert report.store_stats["misses"] == 1


class TestEnvActivation:
    def test_repro_cache_env_enables_store(self, env, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        program, ownables = env
        cold = HybridVerifier(program, ownables, {}).run(FAST_FNS, jobs=1)
        assert cold.store_stats["stores"] == len(FAST_FNS)
        warm = HybridVerifier(program, ownables, {}).run(FAST_FNS, jobs=1)
        assert warm.store_stats["hits"] == len(FAST_FNS)
        assert (tmp_path / "cache" / "journal.jsonl").exists()

    def test_cache_off_by_default(self, env, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        program, ownables = env
        assert HybridVerifier(program, ownables, {}).store is None
