"""The store's durability contract: atomic publishes, checksummed
reads, quarantine/heal, journal self-validation, env configuration."""

import json
import os

import pytest

from repro.errors import StoreCorrupted
from repro.hybrid.pipeline import HybridEntry
from repro.store import CACHEABLE_STATUSES, Journal, ProofStore, STORE_STATS

FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


def entries_for(name, status="verified"):
    return [
        HybridEntry(
            name, "gillian-rust", ok=status == "verified", detail=None,
            note="1 VCs, 3 ms", status=status,
        )
    ]


def entry_file(store, fp):
    return store.entries_dir / fp[:2] / f"{fp}.json"


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ProofStore(tmp_path)
        assert store.put(FP, "fn0", entries_for("fn0"))
        got = store.get(FP, context="fn0")
        assert got is not None
        [e] = got
        assert (e.function, e.half, e.ok, e.status, e.note) == (
            "fn0", "gillian-rust", True, "verified", "1 VCs, 3 ms",
        )
        assert STORE_STATS["hits"] == 1 and STORE_STATS["stores"] == 1

    def test_miss_is_none(self, tmp_path):
        assert ProofStore(tmp_path).get(FP) is None
        assert STORE_STATS["misses"] == 1
        assert STORE_STATS["io_retries"] == 0  # absence is not an I/O fault

    def test_put_is_idempotent(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(FP, "fn0", entries_for("fn0"))
        mtime = entry_file(store, FP).stat().st_mtime_ns
        assert store.put(FP, "fn0", entries_for("fn0"))
        assert entry_file(store, FP).stat().st_mtime_ns == mtime
        assert STORE_STATS["stores"] == 1

    def test_no_tmp_litter(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(FP, "fn0", entries_for("fn0"))
        store.put(FP2, "fn1", entries_for("fn1"))
        assert list(store.tmp_dir.iterdir()) == []

    @pytest.mark.parametrize("status", ["timeout", "crashed", "error"])
    def test_nondeterministic_verdicts_not_persisted(self, tmp_path, status):
        # A timeout depends on the machine's day; caching it would make
        # a bad day permanent.
        assert status not in CACHEABLE_STATUSES
        store = ProofStore(tmp_path)
        assert not store.put(FP, "fn0", entries_for("fn0", status=status))
        assert not entry_file(store, FP).exists()
        assert STORE_STATS["skipped"] == 1

    def test_refuted_is_persisted(self, tmp_path):
        store = ProofStore(tmp_path)
        assert store.put(FP, "fn0", entries_for("fn0", status="refuted"))
        [e] = store.get(FP)
        assert e.status == "refuted" and not e.ok

    def test_entry_payload_is_plain_json(self, tmp_path):
        # The on-disk format is data, not code: an attacker-writable
        # cache dir (cwd checkout, shared CI cache) must never reach an
        # executable deserialiser like pickle.
        import base64

        store = ProofStore(tmp_path)
        store.put(FP, "fn0", entries_for("fn0"))
        envelope = json.loads(entry_file(store, FP).read_text())
        payload = json.loads(base64.b64decode(envelope["payload"]))
        assert payload[0]["function"] == "fn0"

    def test_unencodable_entries_skipped_not_pickled(self, tmp_path):
        store = ProofStore(tmp_path)
        bad = entries_for("fn0")
        bad[0].detail = object()  # no plain-data representation
        assert not store.put(FP, "fn0", bad)
        assert not entry_file(store, FP).exists()
        assert STORE_STATS["skipped"] == 1


class TestCorruption:
    def corrupt_one_byte(self, store, fp):
        path = entry_file(store, fp)
        blob = bytearray(path.read_bytes())
        # Flip inside the payload so JSON still parses but the
        # checksum does not.
        pos = blob.find(b'"payload": "') + 20
        blob[pos] ^= 0x01
        path.write_bytes(bytes(blob))
        return path

    def test_bitflip_quarantined_and_healed(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(FP, "fn0", entries_for("fn0"))
        path = self.corrupt_one_byte(store, FP)
        assert store.get(FP) is None  # heal mode: a miss, never a lie
        assert not path.exists()
        assert len(list(store.quarantine_dir.iterdir())) == 1
        assert STORE_STATS["corrupt"] == 1
        assert STORE_STATS["quarantined"] == 1
        # Re-publishing the re-verified result heals the fingerprint.
        assert store.put(FP, "fn0", entries_for("fn0"))
        assert STORE_STATS["healed"] == 1
        assert store.get(FP) is not None

    def test_truncated_entry_detected(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(FP, "fn0", entries_for("fn0"))
        path = entry_file(store, FP)
        path.write_bytes(path.read_bytes()[: 40])  # torn write
        assert store.get(FP) is None
        assert STORE_STATS["corrupt"] == 1

    def test_wrong_fingerprint_echo_detected(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(FP, "fn0", entries_for("fn0"))
        os.makedirs(entry_file(store, FP2).parent, exist_ok=True)
        os.rename(entry_file(store, FP), entry_file(store, FP2))
        assert store.get(FP2) is None
        assert STORE_STATS["corrupt"] == 1

    def test_strict_mode_raises(self, tmp_path):
        store = ProofStore(tmp_path, verify_mode="strict")
        store.put(FP, "fn0", entries_for("fn0"))
        path = self.corrupt_one_byte(store, FP)
        with pytest.raises(StoreCorrupted, match="checksum"):
            store.get(FP)
        assert path.exists()  # strict mode preserves the evidence

    def test_bad_verify_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="verify_mode"):
            ProofStore(tmp_path, verify_mode="paranoid")


class TestJournal:
    def test_entries_and_run_brackets(self, tmp_path):
        store = ProofStore(tmp_path)
        store.begin_run(["fn0", "fn1"])
        store.put(FP, "fn0", entries_for("fn0"))
        store.end_run()
        records = store.journal.read()
        assert [r["kind"] for r in records] == ["run", "entry", "run"]
        assert records[1]["fn"] == "fn0" and records[1]["fp"] == FP
        assert store.journal.completed_fingerprints() == {FP: "fn0"}
        assert store.journal.interrupted_runs() == 0

    def test_interrupted_run_detected(self, tmp_path):
        store = ProofStore(tmp_path)
        store.begin_run(["fn0"])  # no end: the parent was killed
        assert store.journal.interrupted_runs() == 1
        info = store.resume_info()
        assert info["interrupted_runs"] == 1

    def test_torn_tail_line_skipped(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"kind": "entry", "fn": "fn0", "fp": FP})
        with open(journal.path, "ab") as fh:
            fh.write(b'{"c":"dead","r":{"kind":"entry","fn":"f')  # torn
        records = journal.read()
        assert len(records) == 1 and journal.bad_lines == 1

    def test_checksum_mismatch_skipped(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"kind": "entry", "fn": "fn0", "fp": FP})
        raw = journal.path.read_bytes().replace(b'"fn0"', b'"fn9"')
        journal.path.write_bytes(raw)
        assert journal.read() == [] and journal.bad_lines == 1

    def test_unreadable_journal_degrades_not_raises(self, tmp_path):
        # An EACCES/EIO on the journal must follow the store's
        # never-crash model: zero resumable records, not an exception.
        journal = Journal(tmp_path / "locked")
        journal.path.mkdir()  # read_bytes -> EISDIR, an OSError
        assert journal.read() == [] and journal.bad_lines == 1
        assert journal.completed_fingerprints() == {}
        assert journal.interrupted_runs() == 0


class TestFromEnv:
    def test_off_by_default(self):
        assert ProofStore.from_env({}) is None
        assert ProofStore.from_env({"REPRO_CACHE": "0"}) is None

    def test_enabled_with_dir(self, tmp_path):
        store = ProofStore.from_env(
            {"REPRO_CACHE": "1", "REPRO_CACHE_DIR": str(tmp_path / "c")}
        )
        assert store is not None
        assert store.root == tmp_path / "c"
        assert store.verify_mode == "heal"

    def test_verify_mode_knob(self, tmp_path):
        store = ProofStore.from_env(
            {
                "REPRO_CACHE": "1",
                "REPRO_CACHE_DIR": str(tmp_path),
                "REPRO_CACHE_VERIFY": "strict",
            }
        )
        assert store.verify_mode == "strict"

    def test_unopenable_store_warns_and_disables(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not dir")
        with pytest.warns(RuntimeWarning, match="without a cache"):
            store = ProofStore.from_env(
                {"REPRO_CACHE": "1", "REPRO_CACHE_DIR": str(blocker)}
            )
        assert store is None

    def test_bad_mode_warns_and_disables(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="without a cache"):
            store = ProofStore.from_env(
                {
                    "REPRO_CACHE": "1",
                    "REPRO_CACHE_DIR": str(tmp_path),
                    "REPRO_CACHE_VERIFY": "yolo",
                }
            )
        assert store is None
