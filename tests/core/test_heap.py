"""Tests for the Rust symbolic heap: load/store/alloc/free, moves,
structural expansion, points-to consume/produce (§3.2–3.3)."""

import pytest

from repro.core.address import ptr_field, ptr_offset
from repro.core.heap.heap import SymbolicHeap
from repro.core.heap.laidout import LaidOutNode, SeqContent, Entry, UninitContent
from repro.core.heap.structural import MISSING, UNINIT, HeapCtx, SingleNode
from repro.lang.types import (
    U32,
    U64,
    USIZE,
    AdtTy,
    ParamTy,
    RawPtrTy,
    TypeRegistry,
    option_ty,
    struct_def,
)
from repro.solver import Solver
from repro.solver.sorts import INT, LOC, SeqSort
from repro.solver.terms import (
    Var,
    add,
    eq,
    intlit,
    is_some,
    le,
    lt,
    none,
    not_,
    seq_len,
    some,
    tuple_mk,
)


@pytest.fixture()
def registry():
    reg = TypeRegistry()
    reg.define(struct_def("Pair", [("a", U32), ("b", U64)]))
    node_t = AdtTy("Node", (ParamTy("T"),))
    reg.define(
        struct_def(
            "Node",
            [
                ("elem", ParamTy("T")),
                ("next", option_ty(RawPtrTy(node_t))),
                ("prev", option_ty(RawPtrTy(node_t))),
            ],
            params=("T",),
        )
    )
    return reg


@pytest.fixture()
def ctx(registry):
    return HeapCtx(registry, Solver(), ())


def ok(outcomes):
    good = [o for o in outcomes if o.error is None]
    assert good, f"all branches failed: {[str(o.error) for o in outcomes]}"
    return good


class TestAllocLoadStore:
    def test_alloc_store_load(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [st] = ok(heap.store(p, U64, intlit(42), ctx))
        [ld] = ok(st.heap.load(p, U64, ctx))
        assert ld.value == intlit(42)

    def test_load_uninit_is_ub(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [out] = heap.load(p, U64, ctx)
        assert out.error is not None
        assert out.error.kind == "undefined-behaviour"

    def test_move_deinitialises(self, ctx):
        # §3.2: loading in move context deinitialises the memory.
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [st] = ok(heap.store(p, U64, intlit(7), ctx))
        [mv] = ok(st.heap.load(p, U64, ctx, move=True))
        [again] = mv.heap.load(p, U64, ctx)
        assert again.error is not None
        assert again.error.kind == "undefined-behaviour"

    def test_store_validity_checked(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U32)
        [out] = heap.store(p, U32, intlit(2**32), ctx)  # out of range
        assert out.error is not None
        assert "validity" in out.error.message

    def test_load_assumes_validity(self, ctx, registry):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U32)
        v = Var("v", INT)
        vctx = HeapCtx(registry, ctx.solver, (le(intlit(0), v), lt(v, intlit(2**32))))
        [st] = ok(heap.store(p, U32, v, vctx))
        [ld] = ok(st.heap.load(p, U32, vctx))
        # The facts must bound the loaded value by the u32 range.
        assert any("4294967295" in str(f) for f in ld.facts)

    def test_missing_allocation(self, ctx):
        heap = SymbolicHeap()
        q = Var("q", LOC)
        [out] = heap.load(q, U64, ctx)
        assert out.error.kind == "missing-resource"


class TestStructAccess:
    def test_store_load_field(self, ctx, registry):
        pair = AdtTy("Pair")
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(pair)
        pa = ptr_field(p, pair, 0)
        pb = ptr_field(p, pair, 1)
        [s1] = ok(heap.store(pa, U32, intlit(1), ctx))
        [s2] = ok(s1.heap.store(pb, U64, intlit(2), ctx))
        [l1] = ok(s2.heap.load(pa, U32, ctx))
        [l2] = ok(s2.heap.load(pb, U64, ctx))
        assert l1.value == intlit(1)
        assert l2.value == intlit(2)

    def test_whole_struct_roundtrip(self, ctx):
        pair = AdtTy("Pair")
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(pair)
        v = tuple_mk(intlit(3), intlit(4))
        [st] = ok(heap.store(p, pair, v, ctx))
        [fld] = ok(st.heap.load(ptr_field(p, pair, 1), U64, ctx))
        assert fld.value == intlit(4)
        [whole] = ok(st.heap.load(p, pair, ctx))
        assert ctx.solver.entails([], eq(whole.value, v))

    def test_partial_init_whole_read_fails(self, ctx):
        pair = AdtTy("Pair")
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(pair)
        [s1] = ok(heap.store(ptr_field(p, pair, 0), U32, intlit(1), ctx))
        [out] = s1.heap.load(p, pair, ctx)
        assert out.error is not None  # field b still uninit


class TestEnumAccess:
    def test_option_branching(self, ctx, registry):
        from repro.core.heap.values import validity_constraints
        from repro.solver.sorts import OptionSort

        opt = option_ty(U64)
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(opt)
        v = Var("o", OptionSort(INT))
        # A symbolic Option<u64> must be assumed valid to be storable.
        ctx = HeapCtx(registry, ctx.solver, tuple(validity_constraints(opt, v, registry)))
        [st] = ok(heap.store(p, opt, v, ctx))
        # Reading the Some payload with an undecided discriminant
        # branches; only the Some branch succeeds.
        outs = st.heap.load(ptr_field(p, opt, 0).args[0], opt, ctx)
        assert outs  # whole-value read fine
        payload = st.heap.load(
            __import__("repro.core.address", fromlist=["x"]).ptr_variant_field(
                p, opt, 1, 0
            ),
            U64,
            ctx,
        )
        succ = [o for o in payload if o.error is None]
        fail = [o for o in payload if o.error is not None]
        assert len(succ) == 1
        assert any(is_some(v) in o.facts for o in succ)
        assert fail  # the None branch is UB for this access

    def test_option_known_some(self, ctx, registry):
        opt = option_ty(U64)
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(opt)
        [st] = ok(heap.store(p, opt, some(intlit(9)), ctx))
        from repro.core.address import ptr_variant_field

        [ld] = ok(st.heap.load(ptr_variant_field(p, opt, 1, 0), U64, ctx))
        assert ld.value == intlit(9)
        assert ld.error is None

    def test_option_known_none_payload_is_ub(self, ctx, registry):
        opt = option_ty(U64)
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(opt)
        [st] = ok(heap.store(p, opt, none(INT), ctx))
        from repro.core.address import ptr_variant_field

        outs = st.heap.load(ptr_variant_field(p, opt, 1, 0), U64, ctx)
        assert all(o.error is not None for o in outs)


class TestFree:
    def test_alloc_free(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [st] = ok(heap.store(p, U64, intlit(1), ctx))
        [fr] = ok(st.heap.free(p, U64, ctx))
        assert p not in fr.heap.allocs

    def test_double_free_is_ub(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [st] = ok(heap.store(p, U64, intlit(1), ctx))
        [fr] = ok(st.heap.free(p, U64, ctx))
        [out] = fr.heap.free(p, U64, ctx)
        assert out.error is not None
        assert "double free" in out.error.message

    def test_free_with_framed_off_part_fails(self, ctx):
        pair = AdtTy("Pair")
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(pair)
        v = tuple_mk(intlit(3), intlit(4))
        [st] = ok(heap.store(p, pair, v, ctx))
        [con] = ok(st.heap.consume_points_to(ptr_field(p, pair, 0), U32, ctx))
        [out] = con.heap.free(p, pair, ctx)
        assert out.error is not None


class TestPointsTo:
    def test_consume_then_reload_fails(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [st] = ok(heap.store(p, U64, intlit(5), ctx))
        [con] = ok(st.heap.consume_points_to(p, U64, ctx))
        assert con.value == intlit(5)
        [out] = con.heap.load(p, U64, ctx)
        assert out.error.kind == "missing-resource"

    def test_produce_fills_back(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [st] = ok(heap.store(p, U64, intlit(5), ctx))
        [con] = ok(st.heap.consume_points_to(p, U64, ctx))
        [prod] = ok(con.heap.produce_points_to(p, U64, intlit(6), ctx))
        [ld] = ok(prod.heap.load(p, U64, ctx))
        assert ld.value == intlit(6)

    def test_produce_fresh_object(self, ctx):
        heap = SymbolicHeap()
        q = Var("fresh_l", LOC)
        [prod] = ok(heap.produce_points_to(q, U64, intlit(3), ctx))
        [ld] = ok(prod.heap.load(q, U64, ctx))
        assert ld.value == intlit(3)

    def test_produce_over_owned_is_error(self, ctx):
        # Producing P * P for the same cell must fail (separation!).
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [st] = ok(heap.store(p, U64, intlit(5), ctx))
        [out] = st.heap.produce_points_to(p, U64, intlit(6), ctx)
        assert out.error is not None

    def test_produce_field_of_fresh_object(self, ctx, registry):
        pair = AdtTy("Pair")
        heap = SymbolicHeap()
        q = Var("fresh_l2", LOC)
        pa = ptr_field(q, pair, 1)
        [prod] = ok(heap.produce_points_to(pa, U64, intlit(8), ctx))
        [ld] = ok(prod.heap.load(pa, U64, ctx))
        assert ld.value == intlit(8)
        # Sibling field is missing, not owned.
        [sib] = prod.heap.load(ptr_field(q, pair, 0), U32, ctx)
        assert sib.error.kind == "missing-resource"

    def test_consume_uninit_variant(self, ctx):
        heap = SymbolicHeap()
        heap, p = heap.alloc_typed(U64)
        [con] = ok(heap.consume_points_to(p, U64, ctx, uninit=True))
        assert con.value is None
        [out] = con.heap.load(p, U64, ctx)
        assert out.error.kind == "missing-resource"


class TestLaidOut:
    """Fig. 5: the vec-push pattern on a laid-out node."""

    def _vec_heap(self, ctx, k, n):
        elem_sort = INT
        vals = Var("vals", SeqSort(elem_sort))
        node = LaidOutNode(
            U64,
            (
                Entry(intlit(0), k, SeqContent(U64, vals)),
                Entry(k, n, UninitContent()),
            ),
        )
        heap = SymbolicHeap()
        base = Var("vbuf", LOC)
        heap = SymbolicHeap({base: node}, heap.types)
        return heap, base, vals

    def test_write_at_symbolic_k(self, ctx, registry):
        k = Var("k", INT)
        n = Var("n", INT)
        pc = (le(intlit(0), k), lt(k, n), eq(seq_len(Var("vals", SeqSort(INT))), k))
        vctx = HeapCtx(registry, ctx.solver, pc)
        heap, base, vals = self._vec_heap(vctx, k, n)
        p = ptr_offset(base, U64, k)
        outs = heap.store(p, U64, intlit(99), vctx)
        good = ok(outs)
        # After the write, reading back at k yields the value.
        for o in good:
            rctx = vctx.with_facts(o.facts)
            [ld] = [x for x in o.heap.load(p, U64, rctx) if x.error is None]
            assert ld.value == intlit(99)

    def test_read_uninit_region_is_ub(self, ctx, registry):
        k = Var("k", INT)
        n = Var("n", INT)
        pc = (le(intlit(0), k), lt(add(k, intlit(1)), n))
        vctx = HeapCtx(registry, ctx.solver, pc)
        heap, base, vals = self._vec_heap(vctx, k, n)
        p = ptr_offset(base, U64, add(k, intlit(1)))
        outs = heap.load(p, U64, vctx)
        assert all(o.error is not None for o in outs)
