"""Property tests for structural nodes: for random struct shapes and
values, whole-store → field-reads and field-stores → whole-read agree
with a plain Python record model (§3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.address import ptr_field
from repro.core.heap.heap import SymbolicHeap
from repro.core.heap.structural import HeapCtx
from repro.lang.types import (
    U8,
    U16,
    U32,
    U64,
    AdtTy,
    BoolTy,
    TypeRegistry,
    struct_def,
)
from repro.solver import Solver
from repro.solver.terms import boollit, eq, intlit, tuple_mk

FIELD_TYPES = [U8, U16, U32, U64, BoolTy()]


@st.composite
def struct_shapes(draw):
    n = draw(st.integers(1, 4))
    tys = [draw(st.sampled_from(FIELD_TYPES)) for _ in range(n)]
    values = []
    for t in tys:
        if isinstance(t, BoolTy):
            values.append(draw(st.booleans()))
        else:
            values.append(draw(st.integers(0, t.max_value)))
    return tys, values


def lit(ty, v):
    return boollit(v) if isinstance(ty, BoolTy) else intlit(v)


_counter = [0]


def fresh_struct(registry, tys):
    _counter[0] += 1
    name = f"S{_counter[0]}"
    registry.define(struct_def(name, [(f"f{i}", t) for i, t in enumerate(tys)]))
    return AdtTy(name)


@settings(max_examples=25, deadline=None)
@given(shape=struct_shapes())
def test_whole_store_field_reads(shape):
    tys, values = shape
    registry = TypeRegistry()
    ctx = HeapCtx(registry, Solver(), ())
    s_ty = fresh_struct(registry, tys)
    heap = SymbolicHeap()
    heap, p = heap.alloc_typed(s_ty)
    whole = tuple_mk(*[lit(t, v) for t, v in zip(tys, values)])
    [st_] = [o for o in heap.store(p, s_ty, whole, ctx) if o.error is None]
    heap = st_.heap
    for i, (t, v) in enumerate(zip(tys, values)):
        good = [o for o in heap.load(ptr_field(p, s_ty, i), t, ctx) if o.error is None]
        assert good, f"field {i} read failed"
        assert ctx.solver.entails(good[0].facts, eq(good[0].value, lit(t, v)))


@settings(max_examples=25, deadline=None)
@given(shape=struct_shapes(), data=st.data())
def test_field_stores_whole_read(shape, data):
    tys, values = shape
    registry = TypeRegistry()
    ctx = HeapCtx(registry, Solver(), ())
    s_ty = fresh_struct(registry, tys)
    heap = SymbolicHeap()
    heap, p = heap.alloc_typed(s_ty)
    order = data.draw(st.permutations(range(len(tys))))
    for i in order:
        [st_] = [
            o
            for o in heap.store(ptr_field(p, s_ty, i), tys[i], lit(tys[i], values[i]), ctx)
            if o.error is None
        ]
        heap = st_.heap
    [whole] = [o for o in heap.load(p, s_ty, ctx) if o.error is None]
    expected = tuple_mk(*[lit(t, v) for t, v in zip(tys, values)])
    assert ctx.solver.entails(whole.facts, eq(whole.value, expected))


@settings(max_examples=25, deadline=None)
@given(shape=struct_shapes(), data=st.data())
def test_partial_init_whole_read_fails(shape, data):
    tys, values = shape
    if len(tys) < 2:
        return
    registry = TypeRegistry()
    ctx = HeapCtx(registry, Solver(), ())
    s_ty = fresh_struct(registry, tys)
    heap = SymbolicHeap()
    heap, p = heap.alloc_typed(s_ty)
    skip = data.draw(st.integers(0, len(tys) - 1))
    for i in range(len(tys)):
        if i == skip:
            continue
        [st_] = [
            o
            for o in heap.store(ptr_field(p, s_ty, i), tys[i], lit(tys[i], values[i]), ctx)
            if o.error is None
        ]
        heap = st_.heap
    outs = heap.load(p, s_ty, ctx)
    assert all(o.error is not None for o in outs)
