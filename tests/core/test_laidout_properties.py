"""Property tests for laid-out nodes (Fig. 5): carving/writing at
concrete offsets must agree with a brute-force byte-array model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.address import ptr_offset
from repro.core.heap.heap import SymbolicHeap
from repro.core.heap.laidout import Entry, LaidOutNode, SeqContent, UninitContent
from repro.core.heap.structural import HeapCtx
from repro.lang.types import U64, TypeRegistry
from repro.solver import Solver
from repro.solver.sorts import INT, LOC
from repro.solver.terms import Var, eq, intlit, seq_cons, seq_empty


def make_node(values, cap):
    """[0, len(values)) initialised, [len, cap) uninit."""
    s = seq_empty(INT)
    for v in reversed(values):
        s = seq_cons(intlit(v), s)
    entries = []
    if values:
        entries.append(Entry(intlit(0), intlit(len(values)), SeqContent(U64, s)))
    if len(values) < cap:
        entries.append(Entry(intlit(len(values)), intlit(cap), UninitContent()))
    return LaidOutNode(U64, tuple(entries))


@pytest.fixture(scope="module")
def ctx():
    return HeapCtx(TypeRegistry(), Solver(), ())


@settings(max_examples=12, deadline=None)
@given(
    values=st.lists(st.integers(0, 255), min_size=0, max_size=4),
    data=st.data(),
)
def test_write_then_read_everywhere(values, data):
    """Model check: after writing at a concrete index, every in-bounds
    read agrees with a plain Python list model."""
    ctx = HeapCtx(TypeRegistry(), Solver(), ())
    cap = len(values) + data.draw(st.integers(0, 2))
    if cap == 0:
        return
    node = make_node(values, cap)
    base = Var("buf", LOC)
    heap = SymbolicHeap({base: node}, SymbolicHeap().types)
    model = list(values) + [None] * (cap - len(values))
    idx = data.draw(st.integers(0, cap - 1))
    val = data.draw(st.integers(0, 1000))
    outs = [
        o
        for o in heap.store(ptr_offset(base, U64, intlit(idx)), U64, intlit(val), ctx)
        if o.error is None
    ]
    assert outs, f"store at {idx} failed"
    heap = outs[0].heap
    ctx = ctx.with_facts(outs[0].facts)
    model[idx] = val
    for i in range(cap):
        res = heap.load(ptr_offset(base, U64, intlit(i)), U64, ctx)
        good = [o for o in res if o.error is None]
        if model[i] is None:
            assert not good, f"read of uninit index {i} succeeded"
        else:
            assert good, f"read at {i} failed"
            rctx = ctx.with_facts(good[0].facts)
            assert rctx.solver.entails(rctx.pc, eq(good[0].value, intlit(model[i])))


@settings(max_examples=12, deadline=None)
@given(values=st.lists(st.integers(0, 255), min_size=1, max_size=4))
def test_reads_preserve_contents(values):
    ctx = HeapCtx(TypeRegistry(), Solver(), ())
    node = make_node(values, len(values))
    base = Var("buf", LOC)
    heap = SymbolicHeap({base: node}, SymbolicHeap().types)
    for i, v in enumerate(values):
        [ld] = [
            o
            for o in heap.load(ptr_offset(base, U64, intlit(i)), U64, ctx)
            if o.error is None
        ]
        heap = ld.heap
        ctx = ctx.with_facts(ld.facts)
        assert ctx.solver.entails(ctx.pc, eq(ld.value, intlit(v)))


@settings(max_examples=12, deadline=None)
@given(
    values=st.lists(st.integers(0, 255), min_size=2, max_size=4),
    data=st.data(),
)
def test_range_read_concatenates(values, data):
    ctx = HeapCtx(TypeRegistry(), Solver(), ())
    node = make_node(values, len(values))
    lo = data.draw(st.integers(0, len(values) - 1))
    hi = data.draw(st.integers(lo + 1, len(values)))
    outs = node.read_range(intlit(lo), intlit(hi), ctx)
    good = [o for o in outs if o.error is None]
    assert good
    # The value must be a sequence equal to values[lo:hi].
    expected = seq_empty(INT)
    for v in reversed(values[lo:hi]):
        expected = seq_cons(intlit(v), expected)
    solver = ctx.solver
    assert solver.entails(good[0].facts, eq(good[0].value, expected))
