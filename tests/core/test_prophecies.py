"""Tests for the prophecy context χ: VO/PC resource algebra (§5.3, Fig. 11)."""

import pytest

from repro.core.prophecies import ProphecyCtx, fresh_prophecy
from repro.solver import Solver
from repro.solver.sorts import INT
from repro.solver.terms import Var, eq, intlit

a = Var("a", INT)
b = Var("b", INT)


@pytest.fixture()
def x():
    return fresh_prophecy("t", INT)


class TestProduce:
    def test_vo_without_controller(self, x):
        # VObs-Produce-Without-Controller.
        out = ProphecyCtx().produce_vo(x, a)
        assert out.ctx is not None
        assert out.ctx.entries[x].vo
        assert not out.ctx.entries[x].pc_
        assert out.facts == ()

    def test_vo_with_controller_learns_agreement(self, x):
        # VObs-Produce-With-Controller automates MUT-AGREE.
        ctx = ProphecyCtx().produce_pc(x, a).ctx
        out = ctx.produce_vo(x, b)
        assert out.ctx is not None
        assert out.facts == (eq(b, a),)

    def test_pc_with_observer_learns_agreement(self, x):
        ctx = ProphecyCtx().produce_vo(x, a).ctx
        out = ctx.produce_pc(x, b)
        assert out.facts == (eq(b, a),)

    def test_duplicate_vo_rejected(self, x):
        ctx = ProphecyCtx().produce_vo(x, a).ctx
        out = ctx.produce_vo(x, b)
        assert out.ctx is None

    def test_duplicate_pc_rejected(self, x):
        ctx = ProphecyCtx().produce_pc(x, a).ctx
        out = ctx.produce_pc(x, b)
        assert out.ctx is None


class TestConsume:
    def test_consume_vo_returns_value(self, x):
        ctx = ProphecyCtx().produce_vo(x, a).ctx
        out = ctx.consume_vo(x)
        assert out.value == a
        assert not out.ctx.entries[x].vo

    def test_consume_missing_vo_fails(self, x):
        out = ProphecyCtx().consume_vo(x)
        assert out.ctx is None

    def test_consume_pc(self, x):
        ctx = ProphecyCtx().produce_pc(x, a).ctx
        out = ctx.consume_pc(x)
        assert out.value == a
        assert not out.ctx.entries[x].pc_


class TestGhostRules:
    def test_mut_update_needs_both(self, x):
        ctx = ProphecyCtx().produce_vo(x, a).ctx
        out = ctx.update(x, b)
        assert out.ctx is None  # controller missing

    def test_mut_update(self, x):
        ctx = ProphecyCtx().produce_vo(x, a).ctx
        ctx = ctx.produce_pc(x, a).ctx
        out = ctx.update(x, b)
        assert out.ctx is not None
        assert out.ctx.entries[x].value == b

    def test_resolve_yields_future_equality(self, x):
        # PROPH-RESOLVE: ⟨↑x = current⟩.
        ctx = ProphecyCtx().produce_pc(x, a).ctx
        out = ctx.resolve(x)
        assert out.facts == (eq(x, a),)

    def test_resolve_without_controller_fails(self, x):
        ctx = ProphecyCtx().produce_vo(x, a).ctx
        out = ctx.resolve(x)
        assert out.ctx is None

    def test_update_then_resolve(self, x):
        ctx = ProphecyCtx().produce_vo(x, a).ctx
        ctx = ctx.produce_pc(x, a).ctx
        ctx = ctx.update(x, b).ctx
        out = ctx.resolve(x)
        assert out.facts == (eq(x, b),)
