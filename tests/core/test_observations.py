"""Tests for the observation context φ (§5.2, Figs. 9–10)."""

import pytest

from repro.core.observations import ObservationCtx
from repro.solver import Solver
from repro.solver.sorts import INT
from repro.solver.terms import Var, and_, eq, intlit, le, lt

x = Var("x", INT)
y = Var("y", INT)


@pytest.fixture()
def solver():
    return Solver()


class TestProduce:
    def test_produce_merges(self, solver):
        # Obs-merge: ⟨ψ⟩ * ⟨ψ'⟩ ⊢ ⟨ψ ∧ ψ'⟩.
        ctx = ObservationCtx()
        ctx = ctx.produce(eq(x, intlit(1)), solver, ()).ctx
        out = ctx.produce(le(y, x), solver, ())
        assert out.ctx is not None
        assert out.ctx.holds(and_(eq(x, intlit(1)), le(y, intlit(1))), solver, ())

    def test_unsatisfiable_production_vanishes(self, solver):
        # Proph-Sat: an observation must admit a prophecy assignment.
        ctx = ObservationCtx().produce(eq(x, intlit(1)), solver, ()).ctx
        out = ctx.produce(eq(x, intlit(2)), solver, ())
        assert out.inconsistent

    def test_production_checks_against_pc(self, solver):
        ctx = ObservationCtx()
        out = ctx.produce(eq(x, intlit(5)), solver, (lt(x, intlit(3)),))
        assert out.inconsistent


class TestConsume:
    def test_consume_entailed(self, solver):
        ctx = ObservationCtx().produce(eq(x, intlit(1)), solver, ()).ctx
        out = ctx.consume(le(x, intlit(1)), solver, ())
        assert out.ctx is not None

    def test_consume_is_duplicable(self, solver):
        ctx = ObservationCtx().produce(eq(x, intlit(1)), solver, ()).ctx
        ctx.consume(eq(x, intlit(1)), solver, ())
        out = ctx.consume(eq(x, intlit(1)), solver, ())
        assert out.ctx is not None

    def test_consume_uses_path_condition(self, solver):
        # Proph-True / Observation-Consume: π flows into observations.
        ctx = ObservationCtx()
        out = ctx.consume(le(x, intlit(3)), solver, (eq(x, intlit(2)),))
        assert out.ctx is not None

    def test_consume_not_entailed_fails(self, solver):
        ctx = ObservationCtx()
        out = ctx.consume(eq(x, intlit(2)), solver, ())
        assert out.ctx is None

    def test_mixed_pc_and_obs(self, solver):
        ctx = ObservationCtx().produce(eq(x, y), solver, ()).ctx
        out = ctx.consume(eq(y, intlit(7)), solver, (eq(x, intlit(7)),))
        assert out.ctx is not None
