"""Tests for layout-independent addresses (§3.1)."""

import pytest

from repro.core.address import (
    GLOBAL_TYPE_KEYS,
    Address,
    FieldElem,
    OffsetElem,
    decode_pointer,
    encode_address,
    interpret_projection,
    ptr_field,
    ptr_offset,
    ptr_variant_field,
)
from repro.lang.layout import ALL_STRATEGIES, LayoutEngine
from repro.lang.types import U8, U32, U64, AdtTy, TypeRegistry, struct_def
from repro.solver import Solver
from repro.solver.sorts import LOC
from repro.solver.terms import Var, eq, intlit


@pytest.fixture()
def registry():
    reg = TypeRegistry()
    reg.define(struct_def("S", [("x", U32), ("y", U64)]))
    reg.define(struct_def("T3", [("a", U8), ("b", U8), ("c", U64)]))
    return reg


base = Var("l", LOC)


class TestPointerTerms:
    def test_roundtrip_field(self, registry):
        s = AdtTy("S")
        p = ptr_field(base, s, 1)
        view = decode_pointer(p, GLOBAL_TYPE_KEYS)
        assert view.base == base
        assert view.projection == (FieldElem(s, 1),)

    def test_roundtrip_chain(self, registry):
        s = AdtTy("S")
        t = AdtTy("T3")
        p = ptr_field(ptr_field(base, t, 2), s, 0)
        view = decode_pointer(p, GLOBAL_TYPE_KEYS)
        assert view.projection == (FieldElem(t, 2), FieldElem(s, 0))

    def test_variant_field(self, registry):
        opt = AdtTy("Option", (U64,))
        p = ptr_variant_field(base, opt, 1, 0)
        view = decode_pointer(p, GLOBAL_TYPE_KEYS)
        assert view.projection[0].variant == 1
        assert view.projection[0].index == 0

    def test_offset_collapses_zero(self, registry):
        assert ptr_offset(base, U8, intlit(0)) == base

    def test_offsets_merge(self, registry):
        p = ptr_offset(ptr_offset(base, U8, intlit(3)), U8, intlit(4))
        view = decode_pointer(p, GLOBAL_TYPE_KEYS)
        assert len(view.projection) == 1
        assert view.projection[0].offset == intlit(7)

    def test_encode_is_inverse(self, registry):
        s = AdtTy("S")
        addr = Address(base).field(s, 1).offset(U8, intlit(4))
        p = encode_address(addr, GLOBAL_TYPE_KEYS)
        view = decode_pointer(p, GLOBAL_TYPE_KEYS)
        assert view.base == base
        assert view.projection == addr.projection

    def test_pointer_equality_is_term_equality(self, registry):
        s = AdtTy("S")
        solver = Solver()
        p1 = ptr_field(base, s, 0)
        p2 = ptr_field(base, s, 0)
        assert solver.entails([], eq(p1, p2))


class TestInterpretation:
    """§3.1: interpretation is parametric on the layout and
    position-independent within a projection."""

    def test_field_offsets_follow_layout(self, registry):
        s = AdtTy("S")
        for strat in ALL_STRATEGIES:
            eng = LayoutEngine(registry, strat)
            lo = eng.struct_layout(s)
            off = interpret_projection((FieldElem(s, 1),), eng)
            assert off == intlit(lo.field_offset(1))

    def test_projection_order_irrelevant(self, registry):
        # [.^T i, .^S j] interprets equal to [.^S j, .^T i].
        s = AdtTy("S")
        t = AdtTy("T3")
        eng = LayoutEngine(registry)
        p1 = (FieldElem(t, 2), FieldElem(s, 0))
        p2 = (FieldElem(s, 0), FieldElem(t, 2))
        assert interpret_projection(p1, eng) == interpret_projection(p2, eng)

    def test_symbolic_index_interpretation(self, registry):
        eng = LayoutEngine(registry)
        n = Var("n", __import__("repro.solver.sorts", fromlist=["INT"]).INT)
        off = interpret_projection((OffsetElem(U64, n),), eng)
        # n * size_of::<u64>() = n * 8
        solver = Solver()
        from repro.solver.terms import mul

        assert solver.entails([], eq(off, mul(n, intlit(8))))

    def test_interpretations_differ_across_strategies(self, registry):
        s = AdtTy("S")
        offs = {
            interpret_projection((FieldElem(s, 0),), LayoutEngine(registry, st))
            for st in ALL_STRATEGIES
        }
        assert len(offs) > 1
