"""Tests for the lifetime context ξ (§4.1, Fig. 6) — the automation of
RustBelt's lifetime-logic rules."""

from fractions import Fraction

import pytest

from repro.core.lifetimes import DEAD, LifetimeCtx
from repro.solver import Solver
from repro.solver.sorts import LFT, REAL
from repro.solver.terms import Var, eq, reallit

k1 = Var("κ1", LFT)
k2 = Var("κ2", LFT)


@pytest.fixture()
def solver():
    return Solver()


def q(x) -> object:
    return reallit(Fraction(x))


class TestProducers:
    def test_produce_fresh_alive(self, solver):
        ctx = LifetimeCtx()
        out = ctx.produce_alive(k1, q("1/2"), solver, ())
        assert out.ctx is not None
        assert not out.inconsistent

    def test_produce_adds_fractions(self, solver):
        # Lft-Produce-Alive-Add: [κ]_q * [κ]_q' => [κ]_{q+q'}.
        ctx = LifetimeCtx().new_lifetime(k1)
        ctx = ctx.consume_alive(k1, q("1/2"), solver, ()).ctx
        out = ctx.produce_alive(k1, q("1/2"), solver, ())
        frac = out.ctx.held_fraction(k1, solver, ())
        assert solver.entails([], eq(frac, q(1)))

    def test_produce_alive_over_dead_vanishes(self, solver):
        # LftL-not-own-end via Lft-Produce-Own-End.
        ctx = LifetimeCtx().new_lifetime(k1)
        ctx = ctx.end_lifetime(k1, solver, ()).ctx
        out = ctx.produce_alive(k1, q("1/2"), solver, ())
        assert out.inconsistent

    def test_produce_dead_idempotent(self, solver):
        # LftL-end-persist: the producer is idempotent.
        ctx = LifetimeCtx()
        ctx = ctx.produce_dead(k1, solver, ()).ctx
        out = ctx.produce_dead(k1, solver, ())
        assert out.ctx is not None
        assert not out.inconsistent

    def test_produce_dead_over_alive_vanishes(self, solver):
        ctx = LifetimeCtx().new_lifetime(k1)
        out = ctx.produce_dead(k1, solver, ())
        assert out.inconsistent


class TestConsumers:
    def test_consume_partial_fraction(self, solver):
        ctx = LifetimeCtx().new_lifetime(k1)
        out = ctx.consume_alive(k1, q("1/4"), solver, ())
        assert out.ctx is not None
        held = out.ctx.held_fraction(k1, solver, ())
        assert solver.entails([], eq(held, q("3/4")))

    def test_consume_full_removes_entry(self, solver):
        ctx = LifetimeCtx().new_lifetime(k1)
        out = ctx.consume_alive(k1, q(1), solver, ())
        assert out.ctx is not None
        assert out.ctx.held_fraction(k1, solver, ()) is None

    def test_consume_too_much_fails(self, solver):
        ctx = LifetimeCtx().new_lifetime(k1)
        ctx = ctx.consume_alive(k1, q("1/2"), solver, ()).ctx
        out = ctx.consume_alive(k1, q("3/4"), solver, ())
        assert out.ctx is None

    def test_consume_unknown_lifetime_fails(self, solver):
        out = LifetimeCtx().consume_alive(k1, q(1), solver, ())
        assert out.ctx is None

    def test_consume_dead_persistent(self, solver):
        # Lft-Consume-Exp leaves the context unchanged.
        ctx = LifetimeCtx().produce_dead(k1, solver, ()).ctx
        out = ctx.consume_dead(k1, solver, ())
        assert out.ctx is not None
        out2 = out.ctx.consume_dead(k1, solver, ())
        assert out2.ctx is not None

    def test_consume_any_halves(self, solver):
        ctx = LifetimeCtx().new_lifetime(k1)
        out = ctx.consume_alive_any(k1, solver, ())
        assert out.fraction is not None
        held = out.ctx.held_fraction(k1, solver, ())
        assert solver.entails([], eq(held, q("1/2")))

    def test_nested_opens_always_possible(self, solver):
        # consume_alive_any never exhausts the token.
        ctx = LifetimeCtx().new_lifetime(k1)
        for _ in range(5):
            out = ctx.consume_alive_any(k1, solver, ())
            assert out.ctx is not None
            ctx = out.ctx
        assert ctx.is_alive(k1, solver, ())


class TestEquality:
    def test_resolution_through_pc(self, solver):
        # Lifetimes compared up to path-condition equality.
        ctx = LifetimeCtx().new_lifetime(k1)
        pc = (eq(k1, k2),)
        out = ctx.consume_alive(k2, q("1/2"), solver, pc)
        assert out.ctx is not None

    def test_distinct_lifetimes_independent(self, solver):
        ctx = LifetimeCtx().new_lifetime(k1)
        ctx = ctx.new_lifetime(k2)
        ctx = ctx.end_lifetime(k1, solver, ()).ctx
        assert not ctx.is_alive(k1, solver, ())
        assert ctx.is_alive(k2, solver, ())
