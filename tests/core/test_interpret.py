"""Tests for byte-level interpretation of structural nodes (Fig. 4)."""

import pytest

from repro.core.heap.interpret import (
    PAD,
    UNINIT_BYTE,
    SymByte,
    interpret_node,
    render_image,
)
from repro.core.heap.structural import UNINIT, EnumNode, SingleNode, StructNode
from repro.lang.layout import (
    ALL_STRATEGIES,
    DECLARED,
    LARGEST_FIRST,
    LayoutEngine,
    SMALLEST_FIRST,
)
from repro.lang.types import (
    BOOL,
    U8,
    U32,
    U64,
    AdtTy,
    I8,
    RawPtrTy,
    TypeRegistry,
    option_ty,
    struct_def,
)
from repro.solver.sorts import INT
from repro.solver.terms import Var, boollit, intlit, none, tuple_mk


@pytest.fixture()
def registry():
    reg = TypeRegistry()
    reg.define(struct_def("S", [("x", U32), ("y", U64)]))
    return reg


def fig4_node():
    """The Fig. 4 structural node: ⟨S⟩{⟨x:u32⟩, ⟨y:u64⟩}."""
    x = Var("x", INT)
    y = Var("y", INT)
    return StructNode(
        AdtTy("S"), (SingleNode(U32, x), SingleNode(U64, y))
    ), x, y


class TestFig4:
    def test_largest_first_interpretation(self, registry):
        node, x, y = fig4_node()
        image = interpret_node(node, LayoutEngine(registry, LARGEST_FIRST))
        # Fig. 4 top: y first (8 bytes), then x (4 bytes), then padding.
        assert image[:8] == [SymByte(y, i) for i in range(8)]
        assert image[8:12] == [SymByte(x, i) for i in range(4)]
        assert image[12:] == [PAD] * 4

    def test_smallest_first_interpretation(self, registry):
        node, x, y = fig4_node()
        image = interpret_node(node, LayoutEngine(registry, SMALLEST_FIRST))
        # Fig. 4 bottom: x first, padding, then y.
        assert image[:4] == [SymByte(x, i) for i in range(4)]
        assert image[4:8] == [PAD] * 4
        assert image[8:] == [SymByte(y, i) for i in range(8)]

    def test_same_node_different_images(self, registry):
        node, _, _ = fig4_node()
        images = {
            tuple(map(repr, interpret_node(node, LayoutEngine(registry, s))))
            for s in ALL_STRATEGIES
        }
        assert len(images) > 1  # the point of Fig. 4

    def test_every_strategy_covers_all_value_bytes(self, registry):
        # Layout independence: all 12 value bytes appear under every
        # strategy, only their positions move.
        node, x, y = fig4_node()
        expected = {SymByte(x, i) for i in range(4)} | {SymByte(y, i) for i in range(8)}
        for s in ALL_STRATEGIES:
            image = interpret_node(node, LayoutEngine(registry, s))
            got = {b for b in image if isinstance(b, SymByte)}
            assert got == expected


class TestConcreteValues:
    def test_little_endian_int(self, registry):
        node = SingleNode(U32, intlit(0x01020304))
        image = interpret_node(node, LayoutEngine(registry))
        assert image == [0x04, 0x03, 0x02, 0x01]

    def test_negative_int_twos_complement(self, registry):
        node = SingleNode(I8, intlit(-1))
        image = interpret_node(node, LayoutEngine(registry))
        assert image == [0xFF]

    def test_bool_validity_bit_patterns(self, registry):
        # §3.2: booleans are represented only by 0b0 and 0b1.
        eng = LayoutEngine(registry)
        assert interpret_node(SingleNode(BOOL, boollit(True)), eng) == [1]
        assert interpret_node(SingleNode(BOOL, boollit(False)), eng) == [0]

    def test_uninit_bytes(self, registry):
        node = SingleNode(U32, UNINIT)
        image = interpret_node(node, LayoutEngine(registry))
        assert image == [UNINIT_BYTE] * 4

    def test_niche_none_is_null(self, registry):
        # §3: Option<*mut T> niche — None is the all-zero bit pattern.
        opt = option_ty(RawPtrTy(U64))
        from repro.solver.sorts import LOC

        node = EnumNode(opt, 0, ())
        image = interpret_node(node, LayoutEngine(registry))
        assert image == [0] * 8

    def test_tagged_enum_discriminant(self, registry):
        opt = option_ty(U64)
        node = EnumNode(opt, 1, (SingleNode(U64, intlit(7)),))
        image = interpret_node(node, LayoutEngine(registry))
        assert image[0] == 1  # tag
        assert 7 in image  # payload byte

    def test_struct_value_expansion(self, registry):
        node = SingleNode(AdtTy("S"), tuple_mk(intlit(1), intlit(2)))
        image = interpret_node(node, LayoutEngine(registry, DECLARED))
        assert image[0] == 1
        assert image[8] == 2

    def test_render(self, registry):
        node = SingleNode(U32, intlit(0xAB))
        assert render_image(interpret_node(node, LayoutEngine(registry))) == (
            "ab 00 00 00"
        )
