"""Tests for the Pearlite surface-syntax parser."""

import pytest

from repro.pearlite.ast import (
    PBin,
    PBool,
    PCall,
    PFinal,
    PInt,
    PMatch,
    PModel,
    PNot,
    PVar,
)
from repro.pearlite.parser import PearliteParseError, parse_pearlite


class TestAtoms:
    def test_int(self):
        assert parse_pearlite("42") == PInt(42)

    def test_int_with_underscores(self):
        assert parse_pearlite("1_000") == PInt(1000)

    def test_bools(self):
        assert parse_pearlite("true") == PBool(True)
        assert parse_pearlite("false") == PBool(False)

    def test_var(self):
        assert parse_pearlite("result") == PVar("result")

    def test_path_constant(self):
        assert parse_pearlite("Seq::EMPTY") == PCall("Seq::EMPTY")
        assert parse_pearlite("usize::MAX") == PCall("usize::MAX")

    def test_parenthesised(self):
        assert parse_pearlite("(x)") == PVar("x")


class TestOperators:
    def test_model(self):
        assert parse_pearlite("self@") == PModel(PVar("self"))

    def test_final(self):
        assert parse_pearlite("^self") == PFinal(PVar("self"))

    def test_final_then_model(self):
        assert parse_pearlite("(^self)@") == PModel(PFinal(PVar("self")))

    def test_eq(self):
        t = parse_pearlite("x == y")
        assert t == PBin("==", PVar("x"), PVar("y"))

    def test_precedence_cmp_binds_tighter_than_and(self):
        t = parse_pearlite("a == b && c == d")
        assert isinstance(t, PBin) and t.op == "&&"

    def test_implication_is_right_assoc(self):
        t = parse_pearlite("a ==> b ==> c")
        assert t.op == "==>"
        assert isinstance(t.rhs, PBin) and t.rhs.op == "==>"

    def test_arith(self):
        t = parse_pearlite("x + 1 < y")
        assert t.op == "<"
        assert t.lhs == PBin("+", PVar("x"), PInt(1))

    def test_not(self):
        assert parse_pearlite("!x") == PNot(PVar("x"))


class TestCallsAndMethods:
    def test_function_call(self):
        t = parse_pearlite("Seq::cons(x, y)")
        assert t == PCall("Seq::cons", (PVar("x"), PVar("y")))

    def test_method_call(self):
        t = parse_pearlite("self@.len()")
        assert t == PCall(".len", (PModel(PVar("self")),))

    def test_method_chain(self):
        t = parse_pearlite("self@.len() < usize::MAX")
        assert t.op == "<"


class TestMatch:
    def test_the_paper_spec(self):
        """Fig. 3 (right) parses verbatim."""
        src = (
            "match result { None => (^self)@ == Seq::EMPTY, "
            "Some(x) => self@ == Seq::cons(x@, (^self)@) }"
        )
        t = parse_pearlite(src)
        assert isinstance(t, PMatch)
        assert t.scrutinee == PVar("result")
        assert [a.ctor for a in t.arms] == ["None", "Some"]
        assert t.arms[1].binders == ("x",)

    def test_trailing_comma(self):
        t = parse_pearlite("match r { None => true, Some(v) => false, }")
        assert len(t.arms) == 2

    def test_qualified_patterns(self):
        t = parse_pearlite("match r { Option::None => true, Option::Some(v) => false }")
        assert [a.ctor for a in t.arms] == ["None", "Some"]


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(PearliteParseError):
            parse_pearlite("x == y extra")

    def test_unbalanced_paren(self):
        with pytest.raises(PearliteParseError):
            parse_pearlite("(x == y")

    def test_bad_char(self):
        with pytest.raises(PearliteParseError):
            parse_pearlite("x ? y")

    def test_empty(self):
        with pytest.raises(PearliteParseError):
            parse_pearlite("")
