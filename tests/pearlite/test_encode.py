"""Tests for the systematic Pearlite → Gilsonite encoding (§5.4, E3)."""

import pytest

import repro.rustlib.linked_list as ll
from repro.gilsonite.ast import AliveLft, Exists, Observation, Pred, Pure, Star, iter_parts
from repro.pearlite.encode import EncodeError, PearliteEncoder, _Binding
from repro.pearlite.parser import parse_pearlite
from repro.rustlib.linked_list import build_program
from repro.solver import Solver
from repro.solver.sorts import INT, OptionSort, SeqSort
from repro.solver.terms import (
    Var,
    eq,
    intlit,
    is_some,
    ite,
    lt,
    seq_cons,
    seq_empty,
    seq_len,
    some,
    some_val,
    tuple_get,
    tuple_mk,
)


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    return program, ownables, PearliteEncoder(ownables)


class TestTermEncoding:
    def test_model_of_mut_ref_is_fst(self, env):
        _, ownables, enc = env
        m = Var("m", ownables.repr_sort(ll.MUT_LIST))
        penv = {"self": _Binding(m, True)}
        t = enc.encode_term(parse_pearlite("self@"), penv)
        assert t == tuple_get(m, 0)

    def test_final_model_is_snd(self, env):
        _, ownables, enc = env
        m = Var("m", ownables.repr_sort(ll.MUT_LIST))
        penv = {"self": _Binding(m, True)}
        t = enc.encode_term(parse_pearlite("(^self)@"), penv)
        assert t == tuple_get(m, 1)

    def test_owned_model_is_identity(self, env):
        _, ownables, enc = env
        m = Var("m", ownables.repr_sort(ll.T))
        penv = {"x": _Binding(m, False)}
        assert enc.encode_term(parse_pearlite("x@"), penv) == m

    def test_seq_empty_from_context(self, env):
        _, ownables, enc = env
        m = Var("m", SeqSort(INT))
        penv = {"s": _Binding(m, False)}
        t = enc.encode_term(parse_pearlite("s == Seq::EMPTY"), penv)
        assert t == eq(m, seq_empty(INT))

    def test_seq_cons_and_len(self, env):
        _, ownables, enc = env
        m = Var("m", SeqSort(INT))
        x = Var("x", INT)
        penv = {"s": _Binding(m, False), "x": _Binding(x, False)}
        t = enc.encode_term(parse_pearlite("Seq::cons(x, s).len()"), penv)
        solver = Solver()
        from repro.solver.terms import add

        assert solver.entails([], eq(t, add(seq_len(m), intlit(1))))

    def test_usize_max(self, env):
        _, ownables, enc = env
        t = enc.encode_term(parse_pearlite("usize::MAX"), {})
        assert t == intlit(2**64 - 1)

    def test_match_option_becomes_ite(self, env):
        _, ownables, enc = env
        o = Var("o", OptionSort(INT))
        y = Var("y", INT)
        penv = {"o": _Binding(o, False), "y": _Binding(y, False)}
        t = enc.encode_term(
            parse_pearlite("match o { None => false, Some(v) => v == y }"), penv
        )
        assert t == ite(is_some(o), eq(some_val(o), y), __import__("repro.solver.terms", fromlist=["FALSE"]).FALSE)

    def test_some_constructor(self, env):
        _, ownables, enc = env
        o = Var("o", OptionSort(INT))
        y = Var("y", INT)
        penv = {"o": _Binding(o, False), "y": _Binding(y, False)}
        t = enc.encode_term(parse_pearlite("o == Some(y)"), penv)
        assert t == eq(o, some(y))

    def test_unbound_variable_rejected(self, env):
        _, ownables, enc = env
        with pytest.raises(EncodeError):
            enc.encode_term(parse_pearlite("nope@"), {})

    def test_final_of_owned_rejected(self, env):
        _, ownables, enc = env
        m = Var("m", INT)
        with pytest.raises(EncodeError):
            enc.encode_term(parse_pearlite("^x"), {"x": _Binding(m, False)})


class TestContractEncoding:
    """E3: the §5.4 elaboration applied to the paper's pop_front spec."""

    def test_pop_front_node_shape(self, env):
        program, ownables, enc = env
        body = program.bodies["LinkedList::pop_front_node"]
        spec = enc.encode_contract(
            body,
            {
                "ensures": [
                    "match result { None => (^self)@ == Seq::EMPTY, "
                    "Some(x) => self@ == Seq::cons(x@, (^self)@) }"
                ]
            },
        )
        # Pre: token * ownership of self with a named repr.
        pre_parts = list(iter_parts(spec.pre))
        assert any(isinstance(p, AliveLft) for p in pre_parts)
        own_parts = [p for p in pre_parts if isinstance(p, Pred)]
        assert own_parts and own_parts[0].name.startswith("own:&")
        # Post: ∃m_ret. ownership of result * the observation.
        post_parts = list(iter_parts(spec.post))
        ex = [p for p in post_parts if isinstance(p, Exists)]
        assert ex, "post must quantify the result repr"
        inner = list(iter_parts(ex[0].body))
        assert any(isinstance(p, Observation) for p in inner)
        assert any(isinstance(p, Pred) and p.name.startswith("own:Option") for p in inner)

    def test_requires_becomes_observation(self, env):
        program, ownables, enc = env
        body = program.bodies["LinkedList::push_front_node"]
        spec = enc.encode_contract(
            body, {"requires": ["self@.len() < usize::MAX"]}
        )
        pre_parts = list(iter_parts(spec.pre))
        assert any(isinstance(p, Observation) for p in pre_parts)
        # Not extracted by default (§7.3: hidden inside the observation).
        assert not any(isinstance(p, Pure) for p in pre_parts)

    def test_auto_extract_adds_pure_copy(self, env):
        program, ownables, enc = env
        body = program.bodies["LinkedList::push_front_node"]
        spec = enc.encode_contract(
            body, {"requires": ["self@.len() < usize::MAX"]}, auto_extract=True
        )
        pre_parts = list(iter_parts(spec.pre))
        assert any(isinstance(p, Pure) for p in pre_parts)

    def test_prophetic_requires_not_extracted(self, env):
        program, ownables, enc = env
        body = program.bodies["LinkedList::pop_front_node"]
        spec = enc.encode_contract(
            body,
            {"requires": ["(^self)@.len() < usize::MAX"]},
            auto_extract=True,
        )
        # Depends on ^: must stay inside the observation (§7.3's rule
        # only extracts prophecy-independent knowledge).
        pre_parts = list(iter_parts(spec.pre))
        assert not any(isinstance(p, Pure) for p in pre_parts)
