"""Unit tests for the learned strategy selector and query features.

The selector is deterministic by design (no RNG), so every path —
window commitment, warmup round-robin, exploitation, epsilon
exploration with successive elimination, recency decay, persistence,
the fork-worker delta protocol — can be forced and asserted exactly.
"""

import json

import pytest

from repro.solver.features import query_features
from repro.solver.portfolio import (
    SELECTOR_FILENAME,
    StrategySelector,
    selector_path,
)
from repro.solver.sorts import INT
from repro.solver.strategies import STRATEGIES
from repro.solver.terms import Var, add, intlit, le, or_

NAMES = list(STRATEGIES)
X = Var("x", INT)


def warmed(selector, key, means):
    """Satisfy warmup for ``key`` with the given per-strategy means."""
    for s, mean in means.items():
        for _ in range(max(2, selector.warmup)):
            selector.observe(key, s, mean)
    return selector


class TestWindows:
    def test_choice_commits_for_a_window(self):
        sel = StrategySelector(window=5)
        picks = [sel.choose("k") for _ in range(5)]
        assert len({p[0] for p in picks}) == 1
        assert sel.decisions == 1  # one window decision, five queries

    def test_next_window_is_a_fresh_decision(self):
        sel = StrategySelector(window=2, warmup=1)
        first = sel.choose("k")[0]
        sel.observe("k", first, 0.001)
        sel.choose("k")
        sel.observe("k", first, 0.001)
        second = sel.choose("k")[0]
        assert second != first  # warmup round-robins to the least-tried
        assert sel.decisions == 2

    def test_windows_are_per_bucket(self):
        sel = StrategySelector(window=4)
        sel.choose("a")
        sel.choose("b")
        assert sel.decisions == 2


class TestWarmupAndExploit:
    def test_warmup_round_robins_registry_order(self):
        sel = StrategySelector(warmup=1, window=1, decay=1.0)
        seen = []
        for _ in NAMES:
            name, explored = sel.choose("k")
            assert explored
            seen.append(name)
            sel.observe("k", name, 0.001)
        assert seen == NAMES

    def test_exploits_best_mean(self):
        sel = StrategySelector(warmup=1, explore_every=0, window=1, decay=1.0)
        means = {s: 0.010 for s in NAMES}
        means["lazy"] = 0.001
        warmed(sel, "k", means)
        name, explored = sel.choose("k")
        assert name == "lazy" and not explored

    def test_epsilon_explores_contenders_only(self):
        # lazy best at 1ms; inverted a contender at 1.5ms; the rest
        # eliminated at 10ms (> eliminate_over * best).
        sel = StrategySelector(
            warmup=1, explore_every=1, eliminate_over=2.0, window=1, decay=1.0
        )
        means = {s: 0.010 for s in NAMES}
        means["lazy"] = 0.001
        means["inverted"] = 0.0015
        warmed(sel, "k", means)
        picked = set()
        for _ in range(6):
            name, _ = sel.choose("k")
            picked.add(name)
            sel.observe("k", name, means[name])
        assert "lazy" in picked
        assert picked <= {"lazy", "inverted"}

    def test_cold_bucket_never_crashes(self):
        sel = StrategySelector(warmup=0, window=1)
        name, explored = sel.choose("cold")
        assert name in STRATEGIES and not explored


class TestPriors:
    def test_priors_prune_cold_warmup(self):
        sel = StrategySelector(warmup=1, window=1, decay=1.0)
        priors = {s: 0.001 for s in NAMES}
        priors["eager"] = 0.1  # 100x the best: pruned
        sel.seed(priors)
        seen = set()
        for _ in range(len(NAMES)):
            name, _ = sel.choose("k")
            seen.add(name)
            sel.observe("k", name, 0.001)
        assert "eager" not in seen
        assert seen == set(NAMES) - {"eager"}

    def test_in_bucket_evidence_overrides_prior(self):
        sel = StrategySelector(warmup=1, explore_every=0, window=1, decay=1.0)
        sel.seed({s: 0.001 if s != "eager" else 0.1 for s in NAMES})
        # The bucket has seen eager be the fastest: priors must not
        # hide that evidence.
        means = {s: 0.010 for s in NAMES}
        means["eager"] = 0.0001
        warmed(sel, "k", means)
        assert sel.choose("k")[0] == "eager"

    def test_seed_drops_junk(self):
        sel = StrategySelector()
        sel.seed({"baseline": 0.001, "no_such": 0.001, "lazy": -1, "eager": "x"})
        assert sel._priors == {"baseline": 0.001}

    def test_priors_from_metrics(self):
        from repro.obs.metrics import Metrics
        from repro.solver.portfolio import priors_from_metrics

        reg = Metrics()
        reg.observe("solver.strategy.baseline.seconds", 0.004)
        reg.observe("solver.strategy.baseline.seconds", 0.002)
        reg.observe("solver.strategy.lazy.seconds", 0.001)
        reg.observe("unrelated.seconds", 9.0)
        priors = priors_from_metrics(reg)
        assert priors == {
            "baseline": pytest.approx(0.003),
            "lazy": pytest.approx(0.001),
        }


class TestDecay:
    def test_decay_shrinks_history(self):
        sel = StrategySelector(warmup=0, window=1, decay=0.5)
        sel.observe("k", "baseline", 0.004)
        sel.choose("k")
        assert sel._buckets["k"]["baseline"][0] == pytest.approx(0.5)

    def test_fully_decayed_strategy_reenters_warmup(self):
        sel = StrategySelector(
            warmup=1, explore_every=0, window=1, decay=0.5
        )
        means = {s: 0.010 for s in NAMES}
        means["lazy"] = 0.001
        warmed(sel, "k", means)
        # Exploit long enough for the losers' evidence to decay away.
        for _ in range(8):
            name, _ = sel.choose("k")
            sel.observe("k", name, means[name])
        name, explored = sel.choose("k")
        assert explored  # a decayed loser is being re-audited
        assert name != "lazy"

    def test_decay_disabled(self):
        sel = StrategySelector(warmup=0, window=1, decay=1.0)
        sel.observe("k", "baseline", 0.004)
        sel.choose("k")
        assert sel._buckets["k"]["baseline"][0] == 1


class TestPersistence:
    def test_roundtrip_merges(self, tmp_path):
        path = selector_path(tmp_path)
        assert path.endswith(SELECTOR_FILENAME)
        a = StrategySelector()
        a.observe("k", "baseline", 0.004)
        a.observe("k", "lazy", 0.001)
        assert a.save(path)
        b = StrategySelector()
        b.observe("k", "baseline", 0.002)
        assert b.load(path)
        assert b._buckets["k"]["baseline"] == [2, pytest.approx(0.006)]
        assert b._buckets["k"]["lazy"] == [1, pytest.approx(0.001)]
        assert b.best("k") == "lazy"

    def test_once_guard(self, tmp_path):
        path = selector_path(tmp_path)
        a = StrategySelector()
        a.observe("k", "baseline", 0.004)
        a.save(path)
        b = StrategySelector()
        assert b.load(path, once=True)
        assert not b.load(path, once=True)
        assert b._buckets["k"]["baseline"][0] == 1
        b.clear()
        assert b.load(path, once=True)  # clear() forgets loaded paths

    def test_missing_torn_and_foreign_files(self, tmp_path):
        sel = StrategySelector()
        assert not sel.load(tmp_path / "absent.json")
        torn = tmp_path / "torn.json"
        torn.write_text('{"version": 1, "buck')
        assert not sel.load(torn)
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"version": 99, "buckets": {}}))
        assert not sel.load(foreign)
        assert sel._buckets == {}

    def test_load_skips_malformed_records(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "buckets": {
                        "k": {
                            "baseline": [1, 0.002],
                            "lazy": [0, 0.1],  # non-positive count
                            "eager": [1, -3],  # negative total
                            "no_such_strategy": [1, 0.1],
                            "inverted": "nope",
                        }
                    },
                }
            )
        )
        sel = StrategySelector()
        assert sel.load(path)
        assert list(sel._buckets["k"]) == ["baseline"]

    def test_fractional_counts_roundtrip(self, tmp_path):
        # Decay makes counts fractional; they must survive the disk.
        path = selector_path(tmp_path)
        a = StrategySelector(warmup=0, window=1, decay=0.5)
        a.observe("k", "baseline", 0.004)
        a.choose("k")
        a.save(path)
        b = StrategySelector()
        assert b.load(path)
        assert b._buckets["k"]["baseline"][0] == pytest.approx(0.5)


class TestDelta:
    def test_delta_roundtrip(self):
        parent = StrategySelector()
        parent.observe("k", "baseline", 0.004)
        base = parent.delta_snapshot()
        # "fork": the child continues from the same state.
        child = StrategySelector()
        child.merge_delta(parent.delta_since({}))
        child.observe("k", "baseline", 0.002)
        child.observe("j", "lazy", 0.001)
        delta = child.delta_since(base)
        assert "baseline" in delta["k"] and "lazy" in delta["j"]
        parent.merge_delta(delta)
        assert parent._buckets["k"]["baseline"] == [2, pytest.approx(0.006)]
        assert parent._buckets["j"]["lazy"] == [1, pytest.approx(0.001)]

    def test_empty_delta(self):
        sel = StrategySelector()
        sel.observe("k", "baseline", 0.004)
        assert sel.delta_since(sel.delta_snapshot()) == {}


class TestSummary:
    def test_summary_shape(self):
        sel = StrategySelector(warmup=1, window=1)
        name, _ = sel.choose("k")
        sel.observe("k", name, 0.002)
        s = sel.summary()
        assert s["decisions"] == 1 and s["explorations"] == 1
        assert s["hit_rate"] == 0.0
        assert s["buckets"] == 1
        assert s["best"] == {"k": name}
        assert s["per_strategy"][name]["queries"] == 1

    def test_hit_rate_none_when_idle(self):
        assert StrategySelector().summary()["hit_rate"] is None


class TestFeatures:
    def test_deterministic(self):
        fs = [le(add(X, intlit(1)), intlit(4)), or_(le(X, intlit(0)), le(intlit(0), X))]
        assert query_features(fs) == query_features(list(fs))

    def test_shape_sensitive(self):
        small = [le(X, intlit(1))]
        big = [
            or_(le(X, intlit(i)), le(intlit(i), add(X, intlit(1))))
            for i in range(6)
        ]
        assert query_features(small) != query_features(big)

    def test_key_is_compact_text(self):
        key = query_features([le(X, intlit(1))])
        assert isinstance(key, str) and len(key) < 40
