"""Property-based tests (hypothesis) for the solver.

Soundness is the contract that the whole verifier rests on: UNSAT
answers must be real proofs. We generate random formulas *with a known
satisfying assignment* and check the solver never reports UNSAT; and
we cross-check entailment against brute-force evaluation on small
domains.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import Solver, Status
from repro.solver.sorts import BOOL, INT
from repro.solver.terms import (
    Term,
    Var,
    add,
    and_,
    boollit,
    eq,
    intlit,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    seq_append,
    seq_cons,
    seq_empty,
    seq_len,
    sub,
    substitute,
)

VARS = [Var(f"v{i}", INT) for i in range(4)]
BVARS = [Var(f"b{i}", BOOL) for i in range(2)]


@st.composite
def int_terms(draw, depth=2):
    if depth == 0:
        return draw(
            st.one_of(
                st.sampled_from(VARS),
                st.integers(-20, 20).map(intlit),
            )
        )
    op = draw(st.sampled_from(["leaf", "add", "sub", "neg", "mulc"]))
    if op == "leaf":
        return draw(int_terms(depth=0))
    if op == "neg":
        return neg(draw(int_terms(depth=depth - 1)))
    a = draw(int_terms(depth=depth - 1))
    b = draw(int_terms(depth=depth - 1))
    if op == "add":
        return add(a, b)
    if op == "sub":
        return sub(a, b)
    return mul(a, intlit(draw(st.integers(-3, 3))))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        kind = draw(st.sampled_from(["le", "lt", "eq", "bool"]))
        if kind == "bool":
            return draw(st.sampled_from(BVARS))
        a = draw(int_terms())
        b = draw(int_terms())
        return {"le": le, "lt": lt, "eq": eq}[kind](a, b)
    kind = draw(st.sampled_from(["atom", "and", "or", "not", "ite"]))
    if kind == "atom":
        return draw(formulas(depth=0))
    if kind == "not":
        return not_(draw(formulas(depth=depth - 1)))
    a = draw(formulas(depth=depth - 1))
    b = draw(formulas(depth=depth - 1))
    if kind == "and":
        return and_(a, b)
    if kind == "or":
        return or_(a, b)
    c = draw(formulas(depth=0))
    return ite(c, a, b)


def evaluate(f: Term, env: dict) -> object:
    """Brute-force evaluation of int/bool terms under an assignment."""
    g = substitute(f, env)
    from repro.solver.terms import BoolLit, IntLit

    if isinstance(g, (BoolLit, IntLit)):
        return g.value
    raise ValueError(f"did not fully evaluate: {g}")


@st.composite
def assignments(draw):
    env = {v: intlit(draw(st.integers(-10, 10))) for v in VARS}
    env.update({b: boollit(draw(st.booleans())) for b in BVARS})
    return env


class TestSoundness:
    @settings(max_examples=30, deadline=None)
    @given(fs=st.lists(formulas(), min_size=1, max_size=4), env=assignments())
    def test_never_unsat_on_satisfiable(self, fs, env):
        """If a concrete assignment satisfies all formulas, the solver
        must not claim UNSAT."""
        try:
            values = [evaluate(f, env) for f in fs]
        except ValueError:
            return  # non-ground after substitution (shouldn't happen)
        if not all(values):
            return
        solver = Solver()
        assert solver.check_sat(fs) != Status.UNSAT

    @settings(max_examples=30, deadline=None)
    @given(pc=st.lists(formulas(), min_size=0, max_size=3), goal=formulas(), env=assignments())
    def test_entailment_respects_countermodels(self, pc, goal, env):
        """If an assignment satisfies pc but falsifies the goal, then
        entails(pc, goal) must be False."""
        try:
            if not all(evaluate(f, env) for f in pc):
                return
            if evaluate(goal, env):
                return
        except ValueError:
            return
        solver = Solver()
        assert not solver.entails(pc, goal)

    @settings(max_examples=40, deadline=None)
    @given(f=formulas())
    def test_excluded_middle(self, f):
        solver = Solver()
        assert solver.check_sat([or_(f, not_(f))]) != Status.UNSAT
        assert solver.check_sat([and_(f, not_(f))]) == Status.UNSAT


class TestSequenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(xs=st.lists(st.integers(-5, 5), max_size=5))
    def test_concrete_sequence_length(self, xs):
        solver = Solver()
        s = seq_empty(INT)
        for x in xs:
            s = seq_cons(intlit(x), s)
        assert solver.entails([], eq(seq_len(s), intlit(len(xs))))

    @settings(max_examples=60, deadline=None)
    @given(
        xs=st.lists(st.integers(-5, 5), max_size=4),
        ys=st.lists(st.integers(-5, 5), max_size=4),
    )
    def test_append_length_additive(self, xs, ys):
        solver = Solver()

        def mk(vals):
            s = seq_empty(INT)
            for x in reversed(vals):
                s = seq_cons(intlit(x), s)
            return s

        a, b = mk(xs), mk(ys)
        assert solver.entails(
            [], eq(seq_len(seq_append(a, b)), intlit(len(xs) + len(ys)))
        )

    @settings(max_examples=60, deadline=None)
    @given(xs=st.lists(st.integers(-5, 5), min_size=1, max_size=4))
    def test_cons_head_roundtrip(self, xs):
        from repro.solver.terms import seq_head, seq_tail

        solver = Solver()
        s = seq_empty(INT)
        for x in reversed(xs):
            s = seq_cons(intlit(x), s)
        assert solver.entails([], eq(seq_head(s), intlit(xs[0])))
