"""End-to-end checks of the solver facade: sat, unsat, entailment."""

import pytest

from repro.solver import Solver, Status
from repro.solver.sorts import BOOL, INT, option_of, seq_of
from repro.solver.terms import (
    Var,
    add,
    and_,
    eq,
    ge,
    gt,
    intlit,
    is_some,
    ite,
    le,
    lt,
    mul,
    none,
    not_,
    or_,
    seq_append,
    seq_cons,
    seq_empty,
    seq_head,
    seq_len,
    seq_tail,
    some,
    some_val,
    sub,
    tuple_get,
    tuple_mk,
)


@pytest.fixture()
def solver():
    return Solver()


x = Var("x", INT)
y = Var("y", INT)
z = Var("z", INT)
b = Var("b", BOOL)
s = Var("s", seq_of(INT))
t = Var("t", seq_of(INT))
ox = Var("ox", option_of(INT))


class TestBasicSat:
    def test_empty_is_sat(self, solver):
        assert solver.check_sat([]) == Status.SAT

    def test_contradiction(self, solver):
        assert solver.check_sat([eq(x, intlit(1)), eq(x, intlit(2))]) == Status.UNSAT

    def test_eq_chain_conflict(self, solver):
        assert (
            solver.check_sat([eq(x, y), eq(y, z), not_(eq(x, z))]) == Status.UNSAT
        )

    def test_satisfiable_bounds(self, solver):
        assert solver.check_sat([le(intlit(0), x), lt(x, intlit(10))]) == Status.SAT

    def test_unsat_bounds(self, solver):
        assert (
            solver.check_sat([lt(x, intlit(0)), lt(intlit(0), x)]) == Status.UNSAT
        )

    def test_tight_integer_gap(self, solver):
        # 0 < x < 1 has no integer solutions.
        assert (
            solver.check_sat([lt(intlit(0), x), lt(x, intlit(1))]) == Status.UNSAT
        )

    def test_bool_literal_conflict(self, solver):
        assert solver.check_sat([b, not_(b)]) == Status.UNSAT


class TestArith:
    def test_sum_bound(self, solver):
        # x >= 3, y >= 4 |= x + y >= 7
        pc = [ge(x, intlit(3)), ge(y, intlit(4))]
        assert solver.entails(pc, ge(add(x, y), intlit(7)))

    def test_sum_bound_fails(self, solver):
        pc = [ge(x, intlit(3)), ge(y, intlit(4))]
        assert not solver.entails(pc, ge(add(x, y), intlit(8)))

    def test_subtraction(self, solver):
        pc = [eq(x, add(y, intlit(5)))]
        assert solver.entails(pc, eq(sub(x, y), intlit(5)))

    def test_multiplication_by_constant(self, solver):
        pc = [ge(x, intlit(2))]
        assert solver.entails(pc, ge(mul(x, intlit(3)), intlit(6)))

    def test_equality_propagates_to_arith(self, solver):
        pc = [eq(x, y), lt(y, intlit(5))]
        assert solver.entails(pc, lt(x, intlit(5)))

    def test_machine_int_range(self, solver):
        # usize-style: 0 <= x < 2^64 and x = y + 1 needs y < 2^64 - 1.
        pc = [
            le(intlit(0), x),
            lt(x, intlit(2**64)),
            eq(x, add(y, intlit(1))),
            le(intlit(0), y),
            lt(y, intlit(2**64 - 1)),
        ]
        assert solver.check_sat(pc) == Status.SAT
        assert solver.entails(pc, lt(x, intlit(2**64)))

    def test_overflow_detectable(self, solver):
        # y = 2^64 - 1 and x = y + 1 cannot satisfy x < 2^64.
        pc = [
            eq(y, intlit(2**64 - 1)),
            eq(x, add(y, intlit(1))),
            lt(x, intlit(2**64)),
        ]
        assert solver.check_sat(pc) == Status.UNSAT


class TestBooleanStructure:
    def test_or_branches(self, solver):
        assert (
            solver.check_sat([or_(eq(x, intlit(1)), eq(x, intlit(2))), gt(x, intlit(5))])
            == Status.UNSAT
        )

    def test_or_one_branch_ok(self, solver):
        assert (
            solver.check_sat([or_(eq(x, intlit(1)), eq(x, intlit(7))), gt(x, intlit(5))])
            == Status.SAT
        )

    def test_entails_case_split(self, solver):
        pc = [or_(eq(x, intlit(1)), eq(x, intlit(2)))]
        assert solver.entails(pc, and_(ge(x, intlit(1)), le(x, intlit(2))))

    def test_ite_lifting(self, solver):
        v = ite(b, intlit(1), intlit(2))
        assert solver.entails([], le(v, intlit(2)))
        assert not solver.entails([], eq(v, intlit(1)))
        assert solver.entails([b], eq(v, intlit(1)))

    def test_negated_conjunction(self, solver):
        pc = [not_(and_(ge(x, intlit(0)), le(x, intlit(10)))), ge(x, intlit(0))]
        assert solver.entails(pc, gt(x, intlit(10)))


class TestSequences:
    def test_len_nonneg(self, solver):
        assert solver.entails([], ge(seq_len(s), intlit(0)))

    def test_cons_len(self, solver):
        pc = [eq(t, seq_cons(x, s))]
        assert solver.entails(pc, eq(seq_len(t), add(seq_len(s), intlit(1))))

    def test_cons_head(self, solver):
        pc = [eq(t, seq_cons(x, s))]
        assert solver.entails(pc, eq(seq_head(t), x))

    def test_cons_tail(self, solver):
        pc = [eq(t, seq_cons(x, s))]
        assert solver.entails(pc, eq(seq_tail(t), s))

    def test_cons_not_empty(self, solver):
        pc = [eq(t, seq_cons(x, s))]
        assert solver.entails(pc, not_(eq(t, seq_empty(INT))))

    def test_cons_injective(self, solver):
        pc = [eq(seq_cons(x, s), seq_cons(y, t))]
        assert solver.entails(pc, eq(x, y))
        assert solver.entails(pc, eq(s, t))

    def test_len_zero_is_empty(self, solver):
        pc = [eq(seq_len(s), intlit(0))]
        assert solver.entails(pc, eq(s, seq_empty(INT)))

    def test_append_len(self, solver):
        u = seq_append(s, t)
        assert solver.entails(
            [], eq(seq_len(u), add(seq_len(s), seq_len(t)))
        )

    def test_append_empty(self, solver):
        assert solver.entails([], eq(seq_append(seq_empty(INT), s), s))


class TestOptions:
    def test_some_not_none(self, solver):
        assert solver.entails([], not_(eq(some(x), none(INT))))

    def test_some_injective(self, solver):
        pc = [eq(some(x), some(y))]
        assert solver.entails(pc, eq(x, y))

    def test_is_some_skolemisation(self, solver):
        pc = [is_some(ox), eq(some_val(ox), intlit(3))]
        assert solver.entails(pc, eq(ox, some(intlit(3))))

    def test_not_is_some_means_none(self, solver):
        pc = [not_(is_some(ox))]
        assert solver.entails(pc, eq(ox, none(INT)))

    def test_some_val_congruence(self, solver):
        pc = [eq(ox, some(x)), eq(x, intlit(5))]
        assert solver.entails(pc, eq(some_val(ox), intlit(5)))


class TestTuples:
    def test_projection(self, solver):
        p = tuple_mk(x, y)
        assert solver.entails([], eq(tuple_get(p, 0), x))
        assert solver.entails([], eq(tuple_get(p, 1), y))

    def test_injective(self, solver):
        pc = [eq(tuple_mk(x, y), tuple_mk(z, intlit(3)))]
        assert solver.entails(pc, eq(x, z))
        assert solver.entails(pc, eq(y, intlit(3)))


class TestCaching:
    def test_cache_hit(self, solver):
        f = [eq(x, intlit(1))]
        solver.check_sat(f)
        before = solver.stats["cache_hits"]
        solver.check_sat(f)
        assert solver.stats["cache_hits"] == before + 1
