"""Property tests for hash-consed term interning.

Two invariants matter:

* interning is *canonical* — building the same term twice yields the
  same object (``is``), and interned identity coincides exactly with
  structural equality;
* interning is *transparent* — solver verdicts are identical with
  interning on and off (it is purely an optimisation).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import Solver, Status
from repro.solver.sorts import BOOL, INT
from repro.solver.terms import (
    App,
    IntLit,
    Term,
    Var,
    add,
    and_,
    eq,
    interner_stats,
    interning_enabled,
    intlit,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    seq_cons,
    seq_empty,
    seq_len,
    set_interning,
    sub,
)

VARS = [Var(f"v{i}", INT) for i in range(4)]
BVARS = [Var(f"b{i}", BOOL) for i in range(2)]


@st.composite
def int_terms(draw, depth=2):
    if depth == 0:
        return draw(
            st.one_of(
                st.sampled_from(VARS),
                st.integers(-20, 20).map(intlit),
            )
        )
    op = draw(st.sampled_from(["leaf", "add", "sub", "neg", "mulc"]))
    if op == "leaf":
        return draw(int_terms(depth=0))
    if op == "neg":
        return neg(draw(int_terms(depth=depth - 1)))
    a = draw(int_terms(depth=depth - 1))
    b = draw(int_terms(depth=depth - 1))
    if op == "add":
        return add(a, b)
    if op == "sub":
        return sub(a, b)
    return mul(a, intlit(draw(st.integers(-3, 3))))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        kind = draw(st.sampled_from(["le", "lt", "eq", "bool"]))
        if kind == "bool":
            return draw(st.sampled_from(BVARS))
        a = draw(int_terms())
        b = draw(int_terms())
        return {"le": le, "lt": lt, "eq": eq}[kind](a, b)
    kind = draw(st.sampled_from(["atom", "and", "or", "not", "ite"]))
    if kind == "atom":
        return draw(formulas(depth=0))
    if kind == "not":
        return not_(draw(formulas(depth=depth - 1)))
    a = draw(formulas(depth=depth - 1))
    b = draw(formulas(depth=depth - 1))
    if kind == "and":
        return and_(a, b)
    if kind == "or":
        return or_(a, b)
    c = draw(formulas(depth=0))
    return ite(c, a, b)


def _deep_copy(t: Term) -> Term:
    """Rebuild a term bottom-up through the public constructors,
    guaranteeing a fresh construction path for every node."""
    if isinstance(t, App):
        return App(t.op, tuple(_deep_copy(a) for a in t.args), t.sort)
    if isinstance(t, Var):
        return Var(t.name, t.sort)
    if isinstance(t, IntLit):
        return IntLit(t.value)
    return t


class TestCanonicity:
    @settings(max_examples=60, deadline=None)
    @given(f=formulas())
    def test_rebuilding_is_identity(self, f):
        """intern(a) is intern(b) whenever a == b structurally."""
        assert interning_enabled()
        g = _deep_copy(f)
        assert g == f
        assert g is f

    @settings(max_examples=60, deadline=None)
    @given(a=formulas(), b=formulas())
    def test_identity_iff_structural_equality(self, a, b):
        assert (a is b) == (a == b)

    @settings(max_examples=30, deadline=None)
    @given(f=formulas())
    def test_hash_agrees_with_equality(self, f):
        g = _deep_copy(f)
        assert hash(g) == hash(f)

    @settings(max_examples=20, deadline=None)
    @given(f=formulas())
    def test_pickle_roundtrip_reinterns(self, f):
        g = pickle.loads(pickle.dumps(f))
        assert g == f
        assert g is f  # __reduce__ routes through the interner

    def test_stats_exposed(self):
        s = interner_stats()
        assert set(s) == {"hits", "misses", "live_terms"}
        assert s["misses"] > 0


class TestTransparency:
    """Verdicts must be byte-identical with interning on vs. off."""

    @settings(max_examples=40, deadline=None)
    @given(fs=st.lists(formulas(), min_size=1, max_size=4))
    def test_check_sat_same_verdict(self, fs):
        on = Solver().check_sat(fs)
        prev = set_interning(False)
        try:
            # Rebuild the formulas without interning so the solver sees
            # plain (non-canonical) objects.
            raw = [_deep_copy(f) for f in fs]
            assert not any(r is f for r, f in zip(raw, fs) if isinstance(f, App))
            off = Solver().check_sat(raw)
        finally:
            set_interning(prev)
        assert on == off

    @settings(max_examples=30, deadline=None)
    @given(pc=st.lists(formulas(), min_size=0, max_size=3), goal=formulas())
    def test_entailment_same_verdict(self, pc, goal):
        on = Solver().entails(pc, goal)
        prev = set_interning(False)
        try:
            off = Solver().entails([_deep_copy(f) for f in pc], _deep_copy(goal))
        finally:
            set_interning(prev)
        assert on == off

    def test_disable_produces_fresh_objects(self):
        prev = set_interning(False)
        try:
            a = add(Var("x", INT), intlit(1))
            b = add(Var("x", INT), intlit(1))
            assert a == b and a is not b
        finally:
            set_interning(prev)


class TestSolverIntegration:
    def test_sequence_reasoning_unchanged(self):
        solver = Solver()
        s = seq_cons(intlit(1), seq_cons(intlit(2), seq_empty(INT)))
        assert solver.entails([], eq(seq_len(s), intlit(2)))

    def test_lru_cache_counters(self):
        solver = Solver(cache_capacity=2)
        x = Var("x", INT)
        f1 = [le(intlit(0), x)]
        f2 = [le(intlit(1), x)]
        f3 = [le(intlit(2), x)]
        solver.check_sat(f1)
        solver.check_sat(f1)
        assert solver.stats["cache_hits"] == 1
        assert solver.stats["cache_misses"] == 1
        solver.check_sat(f2)
        solver.check_sat(f3)  # evicts f1 (capacity 2)
        assert solver.stats["cache_evictions"] == 1
        solver.check_sat(f1)  # miss again after eviction
        assert solver.stats["cache_misses"] == 4
