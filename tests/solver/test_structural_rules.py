"""Regression tests for the structural theory rules added for the
verification pipeline: tuple selectors over PC equalities, boolean
equality simplification, sequence unrolling, append decomposition."""

import pytest

from repro.solver import Solver, Status
from repro.solver.sorts import BOOL, INT, SeqSort, TupleSort
from repro.solver.terms import (
    TRUE,
    Var,
    and_,
    eq,
    ge,
    intlit,
    le,
    lt,
    not_,
    seq_append,
    seq_cons,
    seq_empty,
    seq_head,
    seq_len,
    seq_tail,
    tuple_get,
    tuple_mk,
)


@pytest.fixture()
def solver():
    return Solver()


class TestTupleSelectors:
    def test_selector_through_pc_equality(self, solver):
        sv = Var("sv", TupleSort((INT, INT)))
        a = Var("a", INT)
        b = Var("b", INT)
        pc = [eq(sv, tuple_mk(a, b)), eq(a, intlit(5))]
        assert solver.entails(pc, eq(tuple_get(sv, 0), intlit(5)))
        assert solver.entails(pc, eq(tuple_get(sv, 1), b))

    def test_nested_selector_congruence(self, solver):
        sv = Var("sv", TupleSort((TupleSort((INT,)), INT)))
        inner = Var("inner", TupleSort((INT,)))
        pc = [eq(sv, tuple_mk(inner, intlit(2))), eq(inner, tuple_mk(intlit(9)))]
        assert solver.entails(pc, eq(tuple_get(tuple_get(sv, 0), 0), intlit(9)))


class TestBooleanEquality:
    def test_eq_true_is_identity(self, solver):
        b = Var("b", BOOL)
        assert eq(b, TRUE) == b
        assert solver.entails([b], eq(b, TRUE))

    def test_eq_false_is_negation(self, solver):
        b = Var("b", BOOL)
        assert solver.entails([not_(b)], eq(b, __import__("repro.solver.terms", fromlist=["FALSE"]).FALSE))

    def test_bool_eq_between_formulas(self, solver):
        x = Var("x", INT)
        y = Var("y", INT)
        # (x == 0) == (y == 0) with x = y must hold.
        pc = [eq(x, y)]
        assert solver.entails(pc, eq(eq(x, intlit(0)), eq(y, intlit(0))))


class TestSequenceUnrolling:
    def test_nonempty_has_head(self, solver):
        s = Var("s", SeqSort(INT))
        pc = [ge(seq_len(s), intlit(1)), eq(seq_head(s), intlit(3))]
        assert solver.entails(pc, eq(s, seq_cons(intlit(3), seq_tail(s))))

    def test_len_one_is_singleton(self, solver):
        s = Var("s", SeqSort(INT))
        pc = [eq(seq_len(s), intlit(1))]
        assert solver.entails(
            pc, eq(s, seq_cons(seq_head(s), seq_empty(INT)))
        )

    def test_split_recovers_parts(self, solver):
        # The laid-out-node split pattern: whole = append(l, r) with
        # |l| known — head of l is the first element of the whole.
        l = Var("l", SeqSort(INT))
        r = Var("r", SeqSort(INT))
        whole = seq_cons(intlit(7), seq_cons(intlit(8), seq_empty(INT)))
        pc = [eq(whole, seq_append(l, r)), eq(seq_len(l), intlit(1))]
        assert solver.entails(pc, eq(seq_head(l), intlit(7)))
        assert solver.entails(pc, eq(r, seq_cons(intlit(8), seq_empty(INT))))

    def test_append_of_singleton_at_end(self, solver):
        # The RawVec push pattern: new = append(old, [v]).
        old = Var("old", SeqSort(INT))
        v = Var("v", INT)
        new = seq_append(old, seq_cons(v, seq_empty(INT)))
        pc = [eq(seq_len(old), intlit(0))]
        assert solver.entails(pc, eq(new, seq_cons(v, seq_empty(INT))))

    def test_no_spurious_unrolling(self, solver):
        # A possibly-empty sequence must not be forced non-empty.
        s = Var("s", SeqSort(INT))
        pc = [ge(seq_len(s), intlit(0))]
        assert solver.check_sat(pc + [eq(s, seq_empty(INT))]) == Status.SAT
        assert not solver.entails(pc, eq(s, seq_cons(seq_head(s), seq_tail(s))))


class TestLenZeroEmpty:
    def test_len_zero_forces_empty(self, solver):
        s = Var("s", SeqSort(INT))
        pc = [le(seq_len(s), intlit(0))]
        assert solver.entails(pc, eq(s, seq_empty(INT)))

    def test_cons_refutes_len_zero(self, solver):
        s = Var("s", SeqSort(INT))
        x = Var("x", INT)
        assert (
            solver.check_sat([eq(s, seq_cons(x, seq_empty(INT))), eq(seq_len(s), intlit(0))])
            == Status.UNSAT
        )
