"""Randomized cross-strategy differential suite.

The portfolio's hard invariant: search strategies trade *cost*, never
*answers*. Every registered strategy — and the ``auto`` and ``race``
modes built on top of them — must return the same verdict for the
same query. The suite drives all of them over seeded random formula
sets (mixing arithmetic, equalities, boolean structure, ite and
disjunction, so every ordering / closure-timing code path fires) and
asserts verdict equality; the env-knob and cache-knob behaviour rides
along.
"""

import random

import pytest

from repro.solver import Solver, Status
from repro.solver.core import DEFAULT_CACHE_CAPACITY
from repro.solver.portfolio import StrategySelector
from repro.solver.sorts import BOOL, INT
from repro.solver.strategies import (
    MODES,
    STRATEGIES,
    SearchStrategy,
    StrategyDivergence,
    get_strategy,
)
from repro.solver.terms import (
    Var,
    add,
    and_,
    eq,
    intlit,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
)

IVARS = [Var(f"x{i}", INT) for i in range(4)]
BVARS = [Var(f"b{i}", BOOL) for i in range(2)]


def _int_term(rng, depth):
    if depth == 0 or rng.random() < 0.35:
        if rng.random() < 0.6:
            return rng.choice(IVARS)
        return intlit(rng.randint(-8, 8))
    a = _int_term(rng, depth - 1)
    b = _int_term(rng, depth - 1)
    return add(a, b) if rng.random() < 0.5 else sub(a, b)


def _atom(rng):
    kind = rng.choice(["le", "lt", "eq", "bool"])
    if kind == "bool":
        v = rng.choice(BVARS)
        return not_(v) if rng.random() < 0.3 else v
    a = _int_term(rng, 2)
    b = _int_term(rng, 2)
    return {"le": le, "lt": lt, "eq": eq}[kind](a, b)


def _formula(rng, depth):
    if depth == 0:
        return _atom(rng)
    kind = rng.choice(["atom", "and", "or", "not", "ite"])
    if kind == "atom":
        return _atom(rng)
    if kind == "not":
        return not_(_formula(rng, depth - 1))
    a = _formula(rng, depth - 1)
    b = _formula(rng, depth - 1)
    if kind == "and":
        return and_(a, b)
    if kind == "or":
        return or_(a, b)
    return ite(rng.choice(BVARS), a, b)


def _query(seed):
    rng = random.Random(seed)
    return [_formula(rng, rng.randint(1, 3)) for _ in range(rng.randint(1, 4))]


class TestDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_all_strategies_agree(self, seed):
        fs = _query(seed)
        verdicts = {
            name: Solver(strategy=name).check_sat(fs) for name in STRATEGIES
        }
        assert len(set(verdicts.values())) == 1, verdicts

    @pytest.mark.parametrize("seed", range(0, 40, 5))
    def test_race_agrees_with_baseline(self, seed):
        fs = _query(seed)
        assert Solver(strategy="race").check_sat(fs) == Solver().check_sat(fs)

    def test_auto_agrees_with_baseline(self):
        # A tiny window + warmup forces the selector through every
        # strategy across the seeds, not just the early winner.
        sel = StrategySelector(warmup=1, explore_every=2, window=1)
        for seed in range(30):
            fs = _query(seed)
            auto = Solver(strategy="auto", selector=sel).check_sat(fs)
            assert auto == Solver().check_sat(fs), seed

    def test_registry_has_the_paper_strategies(self):
        for name in (
            "baseline",
            "inverted",
            "eager",
            "lazy",
            "conflict_first",
            "prefix_reuse",
        ):
            assert name in STRATEGIES
            assert get_strategy(name).name == name
        assert MODES == ("auto", "race")


class _Lying(SearchStrategy):
    name = "_lying"

    def search(self, solver, formulas):
        return Status.UNSAT


class TestRace:
    def test_race_detects_divergence(self):
        STRATEGIES["_lying"] = _Lying()
        try:
            with pytest.raises(StrategyDivergence):
                Solver(strategy="race").check_sat([eq(intlit(0), intlit(0))])
        finally:
            del STRATEGIES["_lying"]

    def test_divergence_is_in_the_error_taxonomy(self):
        """StrategyDivergence must map to an ``error`` status (and stay
        an AssertionError for the differential suite's contract)."""
        from repro.errors import VerificationError, status_of

        e = StrategyDivergence("boom")
        assert isinstance(e, VerificationError)
        assert isinstance(e, AssertionError)
        assert status_of(e) == "error"

    def test_divergence_degrades_to_error_entry(self):
        """A race-mode divergence mid-verification must become a
        ✗ ``error`` entry, not crash the run."""
        from repro.gilsonite.ownable import OwnableRegistry
        from repro.hybrid.pipeline import HybridVerifier
        from repro.lang.builder import BodyBuilder
        from repro.lang.mir import Program
        from repro.lang.types import U64

        fn = BodyBuilder("f", params=[("x", U64)], ret=U64)
        bb = fn.block()
        bb.assign(
            fn.ret_place, fn.binop("add", fn.copy("x"), fn.const_int(1, U64))
        )
        bb.ret()
        program = Program()
        program.add_body(fn.finish())
        hv = HybridVerifier(
            program,
            OwnableRegistry(program),
            {},
            solver=Solver(strategy="race"),
        )
        hv.store = None
        STRATEGIES["_lying"] = _Lying()
        try:
            report = hv.run(["f"])
        finally:
            del STRATEGIES["_lying"]
        [entry] = report.entries
        assert entry.status == "error"
        assert not report.ok
        assert "disagree" in entry.note


class TestStrategyKnob:
    def test_unknown_name_raises_eagerly(self):
        with pytest.raises(KeyError):
            Solver(strategy="nope")
        with pytest.raises(KeyError):
            get_strategy("nope")

    def test_env_selects_strategy(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_STRATEGY", "inverted")
        assert Solver().strategy == "inverted"

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_STRATEGY", "auto")
        assert Solver().strategy == "auto"

    def test_env_invalid_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_STRATEGY", "bogus")
        with pytest.warns(RuntimeWarning):
            assert Solver().strategy == "baseline"

    def test_explicit_strategy_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_STRATEGY", "eager")
        assert Solver(strategy="lazy").strategy == "lazy"


class TestCacheKnob:
    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_CACHE", "3")
        s = Solver()
        assert s.cache_capacity == 3
        assert s.stats["cache_capacity"] == 3

    def test_default_capacity(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_CACHE", raising=False)
        assert Solver().cache_capacity == DEFAULT_CACHE_CAPACITY

    def test_invalid_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_CACHE", "zero")
        with pytest.warns(RuntimeWarning):
            assert Solver().cache_capacity == DEFAULT_CACHE_CAPACITY
        monkeypatch.setenv("REPRO_SOLVER_CACHE", "-5")
        with pytest.warns(RuntimeWarning):
            assert Solver().cache_capacity == DEFAULT_CACHE_CAPACITY

    def test_lru_evicts_at_capacity(self):
        s = Solver(cache_capacity=2)
        for i in range(4):
            s.check_sat([le(intlit(i), IVARS[0])])
        assert len(s._cache) <= 2
        assert s.stats["cache_evictions"] >= 2
        # The two most recent queries are still hits.
        hits0 = s.stats["cache_hits"]
        s.check_sat([le(intlit(3), IVARS[0])])
        assert s.stats["cache_hits"] == hits0 + 1
