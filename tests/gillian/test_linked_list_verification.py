"""End-to-end verification of the LinkedList module — the paper's §6
evaluation as a test suite (experiments E1 and E2), plus negative
controls ensuring the verifier rejects genuinely broken code."""

import pytest

import repro.rustlib.linked_list as ll
from repro.gillian.verifier import verify_function
from repro.gilsonite.specs import show_safety_spec
from repro.lang.builder import BodyBuilder
from repro.lang.types import USIZE, RefTy, option_ty
from repro.rustlib.linked_list import build_program
from repro.rustlib.specs import (
    functional_new,
    functional_pop_front_node,
    functional_push_front_node,
    install_callee_specs,
)
from repro.solver import Solver


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    install_callee_specs(program, ownables)
    return program, ownables, Solver()


E1_FUNCTIONS = [
    "LinkedList::new",
    "LinkedList::push_front",
    "LinkedList::pop_front",
    "LinkedList::front_mut",
]


class TestTypeSafetyE1:
    """§6: type safety of new, push_front, pop_front, front_mut."""

    @pytest.mark.parametrize("name", E1_FUNCTIONS)
    def test_verifies(self, env, name):
        program, ownables, solver = env
        result = verify_function(
            program, program.bodies[name], program.specs[name], solver
        )
        assert result.ok, [str(i) for i in result.issues]

    def test_internal_helpers_also_safe(self, env):
        program, ownables, solver = env
        for name in (
            "LinkedList::push_front_node",
            "LinkedList::pop_front_node",
        ):
            result = verify_function(
                program, program.bodies[name], program.specs[name], solver
            )
            assert result.ok, [str(i) for i in result.issues]

    def test_only_front_mut_needs_lemmas(self, env):
        """§6: no function other than front_mut requires additional
        annotations (the two lemmas are declared+applied manually)."""
        program, _, _ = env
        from repro.lang.mir import ApplyLemma, Ghost

        for name, expected in [
            ("LinkedList::new", 0),
            ("LinkedList::push_front", 0),
            ("LinkedList::pop_front", 0),
            ("LinkedList::front_mut", 2),
        ]:
            count = 0
            for bb in program.bodies[name].blocks.values():
                for st in bb.statements:
                    if isinstance(st, Ghost) and isinstance(st.ghost, ApplyLemma):
                        count += 1
            assert count == expected, name


class TestFunctionalCorrectnessE2:
    """§6: functional correctness of new, push_front_node,
    pop_front_node (the strongest specs expressible)."""

    def test_new(self, env):
        program, ownables, solver = env
        spec = functional_new(program, ownables)
        r = verify_function(program, program.bodies["LinkedList::new"], spec, solver)
        assert r.ok, [str(i) for i in r.issues]

    def test_push_front_node(self, env):
        program, ownables, solver = env
        spec = functional_push_front_node(program, ownables)
        r = verify_function(
            program, program.bodies["LinkedList::push_front_node"], spec, solver
        )
        assert r.ok, [str(i) for i in r.issues]

    def test_pop_front_node(self, env):
        program, ownables, solver = env
        spec = functional_pop_front_node(program, ownables)
        r = verify_function(
            program, program.bodies["LinkedList::pop_front_node"], spec, solver
        )
        assert r.ok, [str(i) for i in r.issues]

    def test_push_front_node_needs_extracted_precondition(self, env):
        """§7.3 / E8: without manually extracting the len < usize::MAX
        precondition from its observation, the overflow obligation
        cannot be discharged."""
        program, ownables, solver = env
        spec = functional_push_front_node(
            program, ownables, with_extracted_precondition=False
        )
        r = verify_function(
            program, program.bodies["LinkedList::push_front_node"], spec, solver
        )
        assert not r.ok
        assert any("panic" in str(i) for i in r.issues)


class TestNegativeControls:
    """The verifier must reject broken implementations."""

    def test_wrong_len_in_new(self, env):
        program, ownables, solver = env
        fn = BodyBuilder("bad_new", params=[], ret=ll.LIST, generics=("T",))
        bb0 = fn.block()
        t_none = fn.temp(ll.OPT_NODE_PTR)
        bb0.assign(t_none, fn.aggregate(ll.OPT_NODE_PTR, [], variant=0))
        bb0.assign(
            fn.ret_place,
            fn.aggregate(
                ll.LIST,
                [fn.copy(t_none), fn.copy(t_none), fn.const_int(7, USIZE)],
            ),
        )
        bb0.ret()
        program.add_body(fn.finish())
        spec = show_safety_spec(ownables, program.bodies["bad_new"])
        r = verify_function(program, program.bodies["bad_new"], spec, solver)
        assert not r.ok

    def test_fig7_invalid_node_extraction(self, env):
        """Fig. 7: returning &mut Node<T> (not &mut T) would let safe
        code create a cycle — the extraction must be rejected."""
        program, ownables, solver = env
        mut_node = RefTy(ll.NODE, mutable=True)
        ret_ty = option_ty(mut_node)
        fn = BodyBuilder(
            "first_node_mut", params=[("self", ll.MUT_LIST)], ret=ret_ty,
            generics=("T",),
        )
        bb0 = fn.block()
        bb0.apply_lemma("freeze_linked_list", fn.copy("self"))
        t_head = fn.local("t_head", ll.OPT_NODE_PTR)
        bb0.assign(t_head, fn.copy(fn.place("self").deref().field(ll.HEAD)))
        t_disc = fn.local("t_disc", USIZE)
        bb0.assign(t_disc, fn.discriminant(t_head))
        bb_none = fn.block("bb_none")
        bb_some = fn.block("bb_some")
        bb0.switch(fn.copy(t_disc), [(0, bb_none)], otherwise=bb_some)
        bb_none.assign(fn.ret_place, fn.aggregate(ret_ty, [], variant=0))
        bb_none.ret()
        bb_some.apply_lemma("extract_head_element", fn.copy("self"))
        t_node = fn.local("t_node", ll.NODE_PTR)
        bb_some.assign(t_node, fn.copy(fn.place("t_head").downcast(1).field(0)))
        t_ref = fn.local("t_ref", mut_node)
        bb_some.assign(t_ref, fn.ref(fn.place("t_node").deref(), mutable=True))
        bb_some.assign(fn.ret_place, fn.aggregate(ret_ty, [fn.copy(t_ref)], variant=1))
        bb_some.ret()
        program.add_body(fn.finish())
        spec = show_safety_spec(ownables, program.bodies["first_node_mut"])
        r = verify_function(program, program.bodies["first_node_mut"], spec, solver)
        assert not r.ok

    def test_use_after_free_detected(self, env):
        """Double-free / use-after-free through the Box intrinsics."""
        program, ownables, solver = env
        fn = BodyBuilder("double_free", params=[("v", USIZE)], ret=USIZE)
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        bb2 = fn.block("bb2")
        bb3 = fn.block("bb3")
        t_box = fn.local("t_box", ll.box_ty(USIZE))
        bb0.call(t_box, "Box::new", [fn.copy("v")], bb1, ty_args=[USIZE])
        t_unit = fn.local("t_unit", ll.UNIT)
        bb1.call(t_unit, "intrinsic::box_free", [fn.copy(t_box)], bb2, ty_args=[USIZE])
        t_unit2 = fn.local("t_unit2", ll.UNIT)
        bb2.call(t_unit2, "intrinsic::box_free", [fn.copy(t_box)], bb3, ty_args=[USIZE])
        bb3.assign(fn.ret_place, fn.copy("v"))
        bb3.ret()
        program.add_body(fn.finish())
        spec = show_safety_spec(ownables, program.bodies["double_free"])
        r = verify_function(program, program.bodies["double_free"], spec, solver)
        assert not r.ok

    def test_buggy_pop_forgets_prev_fixup(self, env):
        """pop that does not clear the new head's prev pointer breaks
        the dllSeg invariant and must not verify."""
        program, ownables, solver = env
        ret_ty = option_ty(ll.BOX_NODE)
        fn = BodyBuilder(
            "bad_pop", params=[("self", ll.MUT_LIST)], ret=ret_ty, generics=("T",)
        )
        bb0 = fn.block()
        self_list = fn.place("self").deref()
        t_head = fn.local("t_head", ll.OPT_NODE_PTR)
        bb0.assign(t_head, fn.copy(self_list.field(ll.HEAD)))
        t_disc = fn.local("t_disc", USIZE)
        bb0.assign(t_disc, fn.discriminant(t_head))
        bb_none = fn.block("bb_none")
        bb_some = fn.block("bb_some")
        bb0.switch(fn.copy(t_disc), [(0, bb_none)], otherwise=bb_some)
        bb_none.assign(fn.ret_place, fn.aggregate(ret_ty, [], variant=0))
        bb_none.ret()
        t_node = fn.local("t_node", ll.NODE_PTR)
        bb_some.assign(t_node, fn.copy(fn.place("t_head").downcast(1).field(0)))
        t_next = fn.local("t_next", ll.OPT_NODE_PTR)
        bb_some.assign(t_next, fn.copy(fn.place("t_node").deref().field(ll.NEXT)))
        bb_some.assign(self_list.field(ll.HEAD), fn.copy(t_next))
        # BUG: no prev fix-up, no tail fix-up, no len decrement.
        t_box = fn.local("t_box", ll.BOX_NODE)
        bb_some.assign(t_box, fn.cast(fn.copy(t_node), ll.BOX_NODE))
        bb_some.assign(
            fn.ret_place, fn.aggregate(ret_ty, [fn.copy(t_box)], variant=1)
        )
        bb_some.ret()
        program.add_body(fn.finish())
        spec = show_safety_spec(ownables, program.bodies["bad_pop"])
        r = verify_function(program, program.bodies["bad_pop"], spec, solver)
        assert not r.ok
