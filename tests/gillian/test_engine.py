"""Unit tests for the symbolic execution engine: operands, rvalues,
branching, moves, panics, calls, heap-backed locals."""

import pytest

from repro.core.state import RustState, RustStateModel
from repro.gillian.engine import Config, Engine, Terminal, borrowed_locals
from repro.gilsonite.ownable import OwnableRegistry
from repro.gilsonite.specs import show_safety_spec
from repro.gillian.verifier import verify_function
from repro.lang.builder import BodyBuilder
from repro.lang.mir import Program
from repro.lang.types import BOOL, U8, U64, UNIT, USIZE, AdtTy, option_ty, struct_def
from repro.solver import Solver
from repro.solver.terms import (
    Var,
    eq,
    intlit,
    is_some,
    le,
    lt,
    not_,
    some,
    tuple_get,
    tuple_mk,
)


@pytest.fixture()
def setup():
    program = Program()
    program.registry.define(struct_def("Pair", [("a", U64), ("b", U64)]))
    solver = Solver()
    model = RustStateModel(program, solver)
    return program, model, Engine(program, model)


def run(engine, body, args=None, state=None):
    locals0 = dict(args or {})
    locals0.setdefault("'a", Var("κ", __import__("repro.solver.sorts", fromlist=["LFT"]).LFT))
    return engine.run_body(body, Config(state or RustState(), locals0))


class TestStraightLine:
    def test_constant_return(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("f", params=[], ret=U64)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.const_int(7, U64))
        bb.ret()
        [t] = run(engine, fn.finish())
        assert t.ret == intlit(7)

    def test_arith_chain(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("f", params=[("x", U8)], ret=U8)
        bb = fn.block()
        t1 = fn.local("t1", U8)
        bb.assign(t1, fn.binop("mul", fn.copy("x"), fn.const_int(2, U8)))
        bb.assign(fn.ret_place, fn.binop("sub", fn.copy(t1), fn.copy("x")))
        bb.ret()
        x = Var("x", __import__("repro.solver.sorts", fromlist=["INT"]).INT)
        state = RustState(pc=(le(intlit(0), x), lt(x, intlit(100))))
        terms = run(engine, fn.finish(), {"x": x}, state)
        rets = [t for t in terms if not t.panic]
        assert len(rets) == 1
        assert model.solver.entails(rets[0].config.state.pc, eq(rets[0].ret, x))

    def test_struct_aggregate_and_frame_field(self, setup):
        program, model, engine = setup
        pair = AdtTy("Pair")
        fn = BodyBuilder("f", params=[], ret=U64)
        bb = fn.block()
        p = fn.local("p", pair)
        bb.assign(p, fn.aggregate(pair, [fn.const_int(3, U64), fn.const_int(4, U64)]))
        bb.assign(fn.ret_place, fn.copy(fn.place("p").field(1)))
        bb.ret()
        [t] = run(engine, fn.finish())
        assert t.ret == intlit(4)

    def test_frame_subplace_update(self, setup):
        program, model, engine = setup
        pair = AdtTy("Pair")
        fn = BodyBuilder("f", params=[], ret=U64)
        bb = fn.block()
        p = fn.local("p", pair)
        bb.assign(p, fn.aggregate(pair, [fn.const_int(3, U64), fn.const_int(4, U64)]))
        bb.assign(fn.place("p").field(0), fn.const_int(9, U64))
        bb.assign(fn.ret_place, fn.copy(fn.place("p").field(0)))
        bb.ret()
        [t] = run(engine, fn.finish())
        assert model.solver.entails([], eq(t.ret, intlit(9)))


class TestPanics:
    def test_definite_overflow_panics(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("f", params=[], ret=U8)
        bb = fn.block()
        t = fn.local("t", U8)
        bb.assign(t, fn.const_int(255, U8))
        bb.assign(fn.ret_place, fn.binop("add", fn.copy(t), fn.const_int(1, U8)))
        bb.ret()
        [term] = run(engine, fn.finish())
        assert term.panic

    def test_possible_overflow_branches(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("f", params=[("x", U8)], ret=U8)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.binop("add", fn.copy("x"), fn.const_int(1, U8)))
        bb.ret()
        x = Var("x8", __import__("repro.solver.sorts", fromlist=["INT"]).INT)
        state = RustState(pc=(le(intlit(0), x), le(x, intlit(255))))
        terms = run(engine, fn.finish(), {"x": x}, state)
        assert {t.panic for t in terms} == {True, False}

    def test_division_by_possible_zero(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("f", params=[("x", U64)], ret=U64)
        bb = fn.block()
        bb.assign(fn.ret_place, fn.binop("div", fn.const_int(10, U64), fn.copy("x")))
        bb.ret()
        x = Var("xd", __import__("repro.solver.sorts", fromlist=["INT"]).INT)
        state = RustState(pc=(le(intlit(0), x), le(x, intlit(5))))
        terms = run(engine, fn.finish(), {"x": x}, state)
        assert any(t.panic for t in terms)
        assert any(not t.panic for t in terms)

    def test_unchecked_never_panics(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("f", params=[("x", U8)], ret=U8)
        bb = fn.block()
        bb.assign(
            fn.ret_place, fn.binop("add_unchecked", fn.copy("x"), fn.const_int(1, U8))
        )
        bb.ret()
        x = Var("xu", __import__("repro.solver.sorts", fromlist=["INT"]).INT)
        state = RustState(pc=(le(intlit(0), x), le(x, intlit(255))))
        terms = run(engine, fn.finish(), {"x": x}, state)
        assert all(not t.panic for t in terms)


class TestBranching:
    def test_switch_on_option(self, setup):
        program, model, engine = setup
        opt = option_ty(U64)
        fn = BodyBuilder("f", params=[("o", opt)], ret=U64)
        bb0 = fn.block()
        d = fn.local("d", USIZE)
        bb0.assign(d, fn.discriminant("o"))
        bb_none = fn.block("bb_none")
        bb_some = fn.block("bb_some")
        bb0.switch(fn.copy(d), [(0, bb_none)], otherwise=bb_some)
        bb_none.assign(fn.ret_place, fn.const_int(0, U64))
        bb_none.ret()
        bb_some.assign(fn.ret_place, fn.copy(fn.place("o").downcast(1).field(0)))
        bb_some.ret()
        from repro.solver.sorts import INT, OptionSort

        o = Var("o", OptionSort(INT))
        state = RustState(pc=(le(intlit(0), Var("dummy", INT)),))
        terms = run(engine, fn.finish(), {"o": o}, state)
        assert len(terms) == 2
        facts = {
            model.solver.entails(t.config.state.pc, is_some(o)) for t in terms
        }
        assert facts == {True, False}

    def test_decided_switch_single_branch(self, setup):
        program, model, engine = setup
        opt = option_ty(U64)
        fn = BodyBuilder("f", params=[("o", opt)], ret=U64)
        bb0 = fn.block()
        d = fn.local("d", USIZE)
        bb0.assign(d, fn.discriminant("o"))
        bb_none = fn.block("bb_none")
        bb_some = fn.block("bb_some")
        bb0.switch(fn.copy(d), [(0, bb_none)], otherwise=bb_some)
        bb_none.assign(fn.ret_place, fn.const_int(0, U64))
        bb_none.ret()
        bb_some.assign(fn.ret_place, fn.const_int(1, U64))
        bb_some.ret()
        terms = run(engine, fn.finish(), {"o": some(intlit(5))})
        assert len(terms) == 1
        assert terms[0].ret == intlit(1)


class TestHeapBackedLocals:
    def test_borrowed_local_detection(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("f", params=[], ret=UNIT)
        bb = fn.block()
        x = fn.local("x", U64)
        bb.assign(x, fn.const_int(1, U64))
        r = fn.local("r", __import__("repro.lang.types", fromlist=["RefTy"]).RefTy(U64, True))
        bb.assign(r, fn.ref("x", mutable=True))
        bb.assign(fn.ret_place, fn.const_unit())
        bb.ret()
        body = fn.finish()
        assert borrowed_locals(body) == {"x"}

    def test_write_through_reference(self, setup):
        from repro.lang.types import RefTy

        program, model, engine = setup
        fn = BodyBuilder("f", params=[], ret=U64)
        bb = fn.block()
        x = fn.local("x", U64)
        bb.assign(x, fn.const_int(1, U64))
        r = fn.local("r", RefTy(U64, True))
        bb.assign(r, fn.ref("x", mutable=True))
        bb.assign(fn.place("r").deref(), fn.const_int(42, U64))
        bb.assign(fn.ret_place, fn.copy(fn.place("r").deref()))
        bb.ret()
        [t] = run(engine, fn.finish())
        assert t.ret == intlit(42)


class TestCalls:
    def test_call_uses_spec_compositionally(self, setup):
        """The callee body is never executed — only its spec."""
        program, model, engine = setup
        ownables = OwnableRegistry(program)
        # Callee: a bodyless (spec-only) function with a safety spec.
        callee = BodyBuilder("mystery", params=[("x", U64)], ret=U64)
        cb = callee.block()
        cb.unreachable()  # would fail if ever executed
        cbody = callee.finish()
        program.add_body(cbody)
        program.specs["mystery"] = show_safety_spec(ownables, cbody)
        fn = BodyBuilder("caller", params=[("x", U64)], ret=U64)
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        t = fn.local("t", U64)
        bb0.call(t, "mystery", [fn.copy("x")], bb1)
        bb1.assign(fn.ret_place, fn.copy(t))
        bb1.ret()
        program.add_body(fn.finish())
        spec = show_safety_spec(ownables, program.bodies["caller"])
        r = verify_function(program, program.bodies["caller"], spec, model.solver)
        assert r.ok, [str(i) for i in r.issues]

    def test_missing_spec_is_an_issue(self, setup):
        program, model, engine = setup
        fn = BodyBuilder("caller2", params=[], ret=U64)
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        t = fn.local("t", U64)
        bb0.call(t, "nonexistent", [], bb1)
        bb1.assign(fn.ret_place, fn.copy(t))
        bb1.ret()
        terms = run(engine, fn.finish())
        assert all(t.issue is not None for t in terms)
