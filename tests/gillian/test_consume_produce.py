"""Unit tests for the assertion-level producer and consumer (§2.3):
matching plans, out-parameter learning, fold/unfold-on-the-fly."""

import pytest

from repro.core.state import RustState, RustStateModel
from repro.gillian.consume import ConsumeFailure, consume
from repro.gillian.produce import ProduceError, produce
from repro.gilsonite.ast import (
    AliveLft,
    DeadLft,
    Exists,
    Mode,
    Observation,
    Param,
    PointsTo,
    PointsToUninit,
    Pred,
    PredicateDef,
    Pure,
    star,
)
from repro.lang.mir import Program
from repro.lang.types import U64, AdtTy, struct_def
from repro.solver import Solver
from repro.solver.sorts import INT, LFT, LOC, REAL
from repro.solver.terms import (
    Var,
    add,
    eq,
    fresh_var,
    intlit,
    le,
    lt,
    reallit,
    tuple_get,
    tuple_mk,
)


@pytest.fixture()
def model():
    program = Program()
    program.registry.define(struct_def("Pair", [("a", U64), ("b", U64)]))
    return RustStateModel(program, Solver())


def loc(name):
    return Var(name, LOC)


class TestProduce:
    def test_points_to_then_consume(self, model):
        p = loc("p1")
        [s] = produce(model, RustState(), PointsTo(p, U64, intlit(5)))
        [m] = consume(model, s, PointsTo(p, U64, intlit(5)))
        assert m.state.heap.allocs  # region framed off, slot remains

    def test_pure_extends_pc(self, model):
        x = Var("x", INT)
        [s] = produce(model, RustState(), Pure(eq(x, intlit(3))))
        assert model.solver.entails(s.pc, lt(x, intlit(4)))

    def test_contradictory_pure_vanishes(self, model):
        x = Var("x", INT)
        s0 = RustState(pc=(eq(x, intlit(1)),))
        out = produce(model, s0, Pure(eq(x, intlit(2))))
        assert out == []

    def test_exists_freshens(self, model):
        p = loc("p2")
        v = Var("v", INT)
        a = Exists((v,), star(PointsTo(p, U64, v), Pure(le(intlit(0), v))))
        [s] = produce(model, RustState(), a)
        ctx = model.heap_ctx(s)
        [ld] = [o for o in s.heap.load(p, U64, ctx) if o.error is None]
        assert ld.value != v  # the bound var was renamed

    def test_double_points_to_errors(self, model):
        p = loc("p3")
        [s] = produce(model, RustState(), PointsTo(p, U64, intlit(5)))
        with pytest.raises(ProduceError):
            produce(model, s, PointsTo(p, U64, intlit(6)))

    def test_observation_and_token(self, model):
        x = Var("x", INT)
        kappa = Var("κ", LFT)
        q = Var("q", REAL)
        a = star(
            AliveLft(kappa, q),
            Observation(eq(x, intlit(1))),
        )
        [s] = produce(model, RustState(), a)
        assert s.lifetimes.is_alive(kappa, model.solver, s.pc)
        assert s.obs.holds(eq(x, intlit(1)), model.solver, s.pc)

    def test_dead_token_kills_alive_production(self, model):
        kappa = Var("κ", LFT)
        [s] = produce(model, RustState(), DeadLft(kappa))
        out = produce(model, s, AliveLft(kappa, reallit(1)))
        assert out == []


class TestConsume:
    def test_out_value_learned(self, model):
        p = loc("p4")
        [s] = produce(model, RustState(), PointsTo(p, U64, intlit(42)))
        v = Var("out_v", INT)
        [m] = consume(model, s, PointsTo(p, U64, v), {}, {v})
        assert m.bindings[v] == intlit(42)

    def test_structured_unification(self, model):
        pair = AdtTy("Pair")
        p = loc("p5")
        value = tuple_mk(intlit(1), intlit(2))
        [s] = produce(model, RustState(), PointsTo(p, pair, value))
        a = Var("ua", INT)
        b = Var("ub", INT)
        [m] = consume(model, s, PointsTo(p, pair, tuple_mk(a, b)), {}, {a, b})
        assert m.bindings[a] == intlit(1)
        assert m.bindings[b] == intlit(2)

    def test_pure_solving_binds_variable(self, model):
        p = loc("p6")
        [s] = produce(model, RustState(), PointsTo(p, U64, intlit(10)))
        v = Var("v6", INT)
        w = Var("w6", INT)
        a = star(
            PointsTo(p, U64, v),
            Pure(eq(w, add(v, intlit(1)))),
            Pure(lt(w, intlit(100))),
        )
        [m] = consume(model, s, a, {}, {v, w})
        assert model.solver.entails([], eq(m.bindings[w], intlit(11)))

    def test_failed_entailment_raises(self, model):
        p = loc("p7")
        [s] = produce(model, RustState(), PointsTo(p, U64, intlit(1)))
        with pytest.raises(ConsumeFailure):
            consume(model, s, PointsTo(p, U64, intlit(2)))

    def test_missing_resource_raises(self, model):
        with pytest.raises(ConsumeFailure):
            consume(model, RustState(), PointsTo(loc("p8"), U64, intlit(1)))

    def test_uninit_variant(self, model):
        p = loc("p9")
        [s] = produce(model, RustState(), PointsToUninit(p, U64))
        ctx = model.heap_ctx(s)
        [out] = s.heap.load(p, U64, ctx)
        assert out.error is not None  # uninit: cannot read
        [m] = consume(model, s, PointsToUninit(p, U64))
        assert m is not None


class TestNamedPredicates:
    def _install_pred(self, model):
        """pred two(p In, s Out) := ∃v. p ↦ v * s = v + v"""
        p = Var("p", LOC)
        s = Var("s", INT)
        v = Var("v", INT)
        model.program.predicates["two"] = PredicateDef(
            name="two",
            params=(Param(p, Mode.IN), Param(s, Mode.OUT)),
            disjuncts=(
                Exists((v,), star(PointsTo(p, U64, v), Pure(eq(s, add(v, v))))),
            ),
        )

    def test_folded_instance_matches(self, model):
        self._install_pred(model)
        p = loc("pa")
        [s] = produce(model, RustState(), Pred("two", (p, intlit(4))))
        out = Var("o", INT)
        [m] = consume(model, s, Pred("two", (p, out)), {}, {out})
        assert m.bindings[out] == intlit(4)

    def test_fold_on_the_fly(self, model):
        # No folded instance: the consumer folds from the definition.
        self._install_pred(model)
        p = loc("pb")
        [s] = produce(model, RustState(), PointsTo(p, U64, intlit(3)))
        out = Var("o2", INT)
        [m] = consume(model, s, Pred("two", (p, out)), {}, {out})
        assert model.solver.entails([], eq(m.bindings[out], intlit(6)))

    def test_unfold_on_the_fly(self, model):
        # Points-to hidden inside a folded predicate gets exposed.
        self._install_pred(model)
        p = loc("pc")
        [s] = produce(model, RustState(), PointsTo(p, U64, intlit(3)))
        [m0] = consume(model, s, Pred("two", (p, Var("o3", INT))), {}, {Var("o3", INT)})
        folded = m0.state.add_pred(
            __import__("repro.gilsonite.ast", fromlist=["PredInstance"]).PredInstance(
                "two", (p, intlit(6))
            )
        )
        v = Var("v3", INT)
        [m] = consume(model, folded, PointsTo(p, U64, v), {}, {v})
        # The learned value is the definition's existential, equal to 3
        # under the path condition (6 = v + v).
        assert model.solver.entails(m.state.pc, eq(m.bindings[v], intlit(3)))
