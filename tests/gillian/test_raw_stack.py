"""Verification of the user-defined RawStack (the Fig. 2 API story):
the Gilsonite API generalises beyond the std LinkedList."""

import pytest

from repro.gillian.verifier import verify_function
from repro.gilsonite.specs import show_safety_spec
from repro.lang.builder import BodyBuilder
from repro.lang.types import USIZE, option_ty
from repro.pearlite.encode import PearliteEncoder
from repro.pearlite.parser import parse_pearlite
from repro.rustlib import raw_stack as rs
from repro.rustlib.raw_stack import RAW_STACK_CONTRACTS, build_program
from repro.solver import Solver


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    for name in list(program.bodies):
        program.specs[name] = show_safety_spec(ownables, program.bodies[name])
    return program, ownables, Solver()


API = ["RawStack::new", "RawStack::push", "RawStack::pop"]


class TestTypeSafety:
    @pytest.mark.parametrize("name", API)
    def test_verifies(self, env, name):
        program, ownables, solver = env
        r = verify_function(program, program.bodies[name], program.specs[name], solver)
        assert r.ok, [str(i) for i in r.issues]


class TestFunctional:
    @pytest.mark.parametrize("name", API)
    def test_verifies(self, env, name):
        program, ownables, solver = env
        contract = RAW_STACK_CONTRACTS[name]
        manual = [parse_pearlite(s) for s in contract.get("requires", [])]
        spec = PearliteEncoder(ownables).encode_contract(
            program.bodies[name], contract, manual_pure_pre=manual
        )
        r = verify_function(program, program.bodies[name], spec, solver)
        assert r.ok, [str(i) for i in r.issues]

    def test_wrong_order_spec_rejected(self, env):
        # pop claiming to return the *bottom* element must fail.
        program, ownables, solver = env
        spec = PearliteEncoder(ownables).encode_contract(
            program.bodies["RawStack::pop"],
            {
                "ensures": [
                    "match result {"
                    "  None => (^self)@ == Seq::EMPTY,"
                    "  Some(x) => (^self)@ == Seq::cons(x@, self@)"
                    "}"
                ]
            },
        )
        r = verify_function(program, program.bodies["RawStack::pop"], spec, solver)
        assert not r.ok


class TestNegative:
    def test_push_without_len_update_rejected(self, env):
        """Forgetting len += 1 breaks the slSeg length invariant."""
        program, ownables, solver = env
        fn = BodyBuilder(
            "RawStack::bad_push",
            params=[("self", rs.MUT_STACK), ("elt", rs.T)],
            ret=rs.UNIT,
            generics=("T",),
        )
        bb0 = fn.block()
        bb1 = fn.block("bb1")
        self_stack = fn.place("self").deref()
        t_head = fn.local("t_head", rs.OPT_SNODE_PTR)
        bb0.assign(t_head, fn.copy(self_stack.field(rs.HEAD)))
        t_node_val = fn.local("t_node_val", rs.SNODE)
        bb0.assign(
            t_node_val, fn.aggregate(rs.SNODE, [fn.move("elt"), fn.copy(t_head)])
        )
        t_box = fn.local("t_box", rs.BOX_SNODE)
        bb0.call(t_box, "Box::new", [fn.move(t_node_val)], bb1, ty_args=[rs.SNODE])
        t_raw = fn.local("t_raw", rs.SNODE_PTR)
        bb1.assign(t_raw, fn.cast(fn.move(t_box), rs.SNODE_PTR))
        t_opt = fn.local("t_opt", rs.OPT_SNODE_PTR)
        bb1.assign(t_opt, fn.aggregate(rs.OPT_SNODE_PTR, [fn.copy(t_raw)], variant=1))
        bb1.assign(self_stack.field(rs.HEAD), fn.copy(t_opt))
        # BUG: no len update.
        bb1.assign(fn.ret_place, fn.const_unit())
        bb1.ret()
        body = fn.finish()
        program.add_body(body)
        spec = show_safety_spec(ownables, body)
        r = verify_function(program, body, spec, solver)
        assert not r.ok

    def test_leaking_node_rejected_functionally(self, env):
        """pop that reads the element but forgets to relink head:
        the functional spec must fail."""
        program, ownables, solver = env
        ret_ty = option_ty(rs.T)
        fn = BodyBuilder(
            "RawStack::bad_pop",
            params=[("self", rs.MUT_STACK)],
            ret=ret_ty,
            generics=("T",),
        )
        bb0 = fn.block()
        bb0.mutref_auto_resolve("self")
        self_stack = fn.place("self").deref()
        t_head = fn.local("t_head", rs.OPT_SNODE_PTR)
        bb0.assign(t_head, fn.copy(self_stack.field(rs.HEAD)))
        t_disc = fn.local("t_disc", USIZE)
        bb0.assign(t_disc, fn.discriminant(t_head))
        bb_none = fn.block("bb_none")
        bb_some = fn.block("bb_some")
        bb0.switch(fn.copy(t_disc), [(0, bb_none)], otherwise=bb_some)
        bb_none.assign(fn.ret_place, fn.aggregate(ret_ty, [], variant=0))
        bb_none.ret()
        t_node = fn.local("t_node", rs.SNODE_PTR)
        bb_some.assign(t_node, fn.copy(fn.place("t_head").downcast(1).field(0)))
        t_elem = fn.local("t_elem", rs.T)
        # BUG: copies the element out but leaves head unchanged.
        bb_some.assign(t_elem, fn.move(fn.place("t_node").deref().field(rs.ELEM)))
        bb_some.assign(
            fn.ret_place, fn.aggregate(ret_ty, [fn.move(t_elem)], variant=1)
        )
        bb_some.ret()
        body = fn.finish()
        program.add_body(body)
        spec = PearliteEncoder(ownables).encode_contract(
            body, RAW_STACK_CONTRACTS["RawStack::pop"]
        )
        r = verify_function(program, body, spec, solver)
        assert not r.ok
