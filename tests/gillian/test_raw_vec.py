"""Verification of RawVec — laid-out nodes and pointer arithmetic
inside full proofs (§3.2 exercised end-to-end)."""

import pytest

from repro.gillian.verifier import verify_function
from repro.gilsonite.specs import show_safety_spec
from repro.lang.builder import BodyBuilder
from repro.lang.types import BOOL, USIZE, option_ty
from repro.pearlite.encode import PearliteEncoder
from repro.rustlib import raw_vec as rv
from repro.rustlib.raw_vec import RAW_VEC_CONTRACTS, build_program
from repro.solver import Solver


@pytest.fixture(scope="module")
def env():
    program, ownables = build_program()
    return program, ownables, Solver()


API = ["RawVec::with_capacity", "RawVec::push_within_capacity", "RawVec::pop"]


class TestTypeSafety:
    @pytest.mark.parametrize("name", API)
    def test_verifies(self, env, name):
        program, ownables, solver = env
        spec = show_safety_spec(ownables, program.bodies[name])
        r = verify_function(program, program.bodies[name], spec, solver)
        assert r.ok, [str(i) for i in r.issues]


class TestFunctional:
    @pytest.mark.parametrize("name", API)
    def test_verifies(self, env, name):
        program, ownables, solver = env
        spec = PearliteEncoder(ownables).encode_contract(
            program.bodies[name], RAW_VEC_CONTRACTS[name]
        )
        r = verify_function(program, program.bodies[name], spec, solver)
        assert r.ok, [str(i) for i in r.issues]


class TestNegative:
    def test_unchecked_push_rejected(self, env):
        """Writing without the capacity check can write past the
        allocation — the proof must fail (out-of-bounds / missing)."""
        program, ownables, solver = env
        ret_ty = option_ty(rv.ELEM)
        fn = BodyBuilder(
            "RawVec::bad_push", params=[("self", rv.MUT_VEC), ("v", rv.ELEM)],
            ret=ret_ty,
        )
        bb0 = fn.block()
        self_vec = fn.place("self").deref()
        t_len = fn.local("t_len", USIZE)
        bb0.assign(t_len, fn.copy(self_vec.field(rv.LEN)))
        t_buf = fn.local("t_buf", rv.BUF_PTR)
        bb0.assign(t_buf, fn.copy(self_vec.field(rv.BUF)))
        t_end = fn.local("t_end", rv.BUF_PTR)
        bb0.assign(t_end, fn.binop("offset", fn.copy(t_buf), fn.copy(t_len)))
        # BUG: no len == cap check before the write.
        bb0.assign(fn.place("t_end").deref(), fn.move("v"))
        t_len2 = fn.local("t_len2", USIZE)
        bb0.assign(t_len2, fn.binop("add", fn.copy(t_len), fn.const_int(1, USIZE)))
        bb0.assign(self_vec.field(rv.LEN), fn.copy(t_len2))
        bb0.assign(fn.ret_place, fn.aggregate(ret_ty, [], variant=0))
        bb0.ret()
        body = fn.finish()
        program.add_body(body)
        spec = show_safety_spec(ownables, body)
        r = verify_function(program, body, spec, solver)
        assert not r.ok

    def test_pop_without_len_check_rejected(self, env):
        """pop on a possibly-empty vector underflows len (panics) or
        reads out of bounds — type safety tolerates the panic branch
        but the uninitialised read must be caught."""
        program, ownables, solver = env
        ret_ty = option_ty(rv.ELEM)
        fn = BodyBuilder("RawVec::bad_pop", params=[("self", rv.MUT_VEC)], ret=ret_ty)
        bb0 = fn.block()
        self_vec = fn.place("self").deref()
        t_len = fn.local("t_len", USIZE)
        bb0.assign(t_len, fn.copy(self_vec.field(rv.LEN)))
        # BUG: no emptiness check; read at len - 1 directly.
        t_len2 = fn.local("t_len2", USIZE)
        bb0.assign(t_len2, fn.binop("sub", fn.copy(t_len), fn.const_int(1, USIZE)))
        t_buf = fn.local("t_buf", rv.BUF_PTR)
        bb0.assign(t_buf, fn.copy(self_vec.field(rv.BUF)))
        t_end = fn.local("t_end", rv.BUF_PTR)
        bb0.assign(t_end, fn.binop("offset", fn.copy(t_buf), fn.copy(t_len2)))
        t_val = fn.local("t_val", rv.ELEM)
        bb0.assign(t_val, fn.move(fn.place("t_end").deref()))
        bb0.assign(self_vec.field(rv.LEN), fn.copy(t_len2))
        bb0.assign(fn.ret_place, fn.aggregate(ret_ty, [fn.move(t_val)], variant=1))
        bb0.ret()
        body = fn.finish()
        program.add_body(body)
        spec = PearliteEncoder(ownables).encode_contract(
            body, RAW_VEC_CONTRACTS["RawVec::pop"]
        )
        r = verify_function(program, body, spec, solver)
        assert not r.ok
