"""Unit tests for the consumer's unification (§7.2's In/Out dataflow):
binding plain variables, destructuring constructors, entailment checks
for ground expressions, and borrow-argument learning."""

import pytest

from repro.core.borrows import BorrowInstance
from repro.core.state import RustState, RustStateModel
from repro.gillian.consume import ConsumeFailure, consume, unify
from repro.gilsonite.ast import Borrow, Mode, Param, PredicateDef, Pure, star
from repro.lang.mir import Program
from repro.solver import Solver
from repro.solver.sorts import INT, LFT, LOC, OptionSort, SeqSort
from repro.solver.terms import (
    Var,
    eq,
    fresh_var,
    intlit,
    none,
    seq_cons,
    seq_empty,
    some,
    tuple_get,
    tuple_mk,
)


@pytest.fixture()
def model():
    return RustStateModel(Program(), Solver())


def state(*pc):
    return RustState(pc=tuple(pc))


class TestUnify:
    def test_bind_plain_variable(self, model):
        v = Var("u1", INT)
        res = unify(model, state(), v, intlit(3), {}, {v})
        assert res is not None
        b, u = res
        assert b[v] == intlit(3)
        assert v not in u

    def test_ground_checked_by_entailment(self, model):
        x = Var("x", INT)
        s = state(eq(x, intlit(5)))
        assert unify(model, s, intlit(5), x, {}, set()) is not None
        assert unify(model, s, intlit(6), x, {}, set()) is None

    def test_destructure_some(self, model):
        v = Var("u2", INT)
        o = Var("o", OptionSort(INT))
        s = state(eq(o, some(intlit(9))))
        res = unify(model, s, some(v), o, {}, {v})
        assert res is not None
        b, _ = res
        assert model.solver.entails(s.pc, eq(b[v], intlit(9)))

    def test_some_against_none_fails(self, model):
        v = Var("u3", INT)
        o = Var("o2", OptionSort(INT))
        s = state(eq(o, none(INT)))
        assert unify(model, s, some(v), o, {}, {v}) is None

    def test_destructure_tuple(self, model):
        a = Var("ua", INT)
        b = Var("ub", INT)
        actual = tuple_mk(intlit(1), intlit(2))
        res = unify(model, state(), tuple_mk(a, b), actual, {}, {a, b})
        assert res is not None
        bindings, _ = res
        assert bindings[a] == intlit(1)
        assert bindings[b] == intlit(2)

    def test_partial_tuple_mixed_ground(self, model):
        a = Var("uc", INT)
        actual = tuple_mk(intlit(1), intlit(2))
        ok = unify(model, state(), tuple_mk(a, intlit(2)), actual, {}, {a})
        assert ok is not None
        bad = unify(model, state(), tuple_mk(a, intlit(3)), actual, {}, {a})
        assert bad is None

    def test_destructure_cons_needs_nonempty(self, model):
        h = Var("uh", INT)
        t = Var("ut", SeqSort(INT))
        s_var = Var("sq", SeqSort(INT))
        known = state(eq(s_var, seq_cons(intlit(4), seq_empty(INT))))
        res = unify(model, known, seq_cons(h, t), s_var, {}, {h, t})
        assert res is not None
        bindings, _ = res
        assert model.solver.entails(known.pc, eq(bindings[h], intlit(4)))
        # Possibly-empty sequence: refuse to destructure.
        unknown = state()
        assert unify(model, unknown, seq_cons(h, t), s_var, {}, {h, t}) is None

    def test_bound_variable_behaves_ground(self, model):
        v = Var("ud", INT)
        res = unify(model, state(), v, intlit(7), {v: intlit(7)}, set())
        assert res is not None
        assert unify(model, state(), v, intlit(8), {v: intlit(7)}, set()) is None


class TestBorrowArgumentLearning:
    def test_unbound_borrow_args_learned(self, model):
        """Consuming &κ δ(p, x) with x unbound binds it from γ — the
        mechanism that recovers prophecy variables from ⌊&mut T⌋."""
        kappa = fresh_var("κ", LFT)
        p = fresh_var("p", LOC)
        x_actual = fresh_var("x", INT)
        model.program.predicates["δ"] = PredicateDef(
            name="δ",
            params=(
                Param(Var("κp", LFT), Mode.IN),
                Param(Var("pp", LOC), Mode.IN),
                Param(Var("xp", INT), Mode.IN),
            ),
            guard="κp",
        )
        st = RustState(
            borrows=RustState().borrows.add_borrow(
                BorrowInstance("δ", kappa, (p, x_actual))
            )
        )
        x_unbound = Var("x_learn", INT)
        matches = consume(
            model, st, Borrow(kappa, "δ", (p, x_unbound)), {}, {x_unbound}
        )
        assert matches
        assert matches[0].bindings[x_unbound] == x_actual
        assert not matches[0].state.borrows.borrows

    def test_wrong_lifetime_not_matched(self, model):
        kappa = fresh_var("κ1", LFT)
        other = fresh_var("κ2", LFT)
        p = fresh_var("p2", LOC)
        st = RustState(
            borrows=RustState().borrows.add_borrow(BorrowInstance("δ2", kappa, (p,)))
        )
        with pytest.raises(ConsumeFailure):
            consume(model, st, Borrow(other, "δ2", (p,)), {}, set())


class TestPureSolving:
    def test_chained_equations(self, model):
        # v = 3 * 1  then  w = v + 1 — both solved in plan order.
        from repro.solver.terms import add, mul

        v = Var("pv", INT)
        w = Var("pw", INT)
        a = star(
            Pure(eq(v, mul(intlit(3), intlit(1)))),
            Pure(eq(w, add(v, intlit(1)))),
        )
        matches = consume(model, RustState(), a, {}, {v, w})
        assert matches
        assert model.solver.entails([], eq(matches[0].bindings[w], intlit(4)))

    def test_unsolvable_plan_fails(self, model):
        # Two unknowns in one equation: no matching plan exists.
        from repro.solver.terms import add

        v = Var("qv", INT)
        w = Var("qw", INT)
        a = Pure(eq(add(v, w), intlit(3)))
        with pytest.raises(ConsumeFailure):
            consume(model, RustState(), a, {}, {v, w})
