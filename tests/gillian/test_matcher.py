"""Unit tests for the tactics layer: unfold/fold, gunfold/gfold,
closing tokens, repair heuristics (§4.2)."""

import pytest

from repro.core.borrows import BorrowInstance
from repro.core.state import RustState, RustStateModel
from repro.gillian.matcher import (
    TacticError,
    TacticStats,
    close_all_borrows,
    fold,
    gfold,
    gunfold,
    unfold,
    unfold_to_prove,
)
from repro.gillian.produce import produce
from repro.gilsonite.ast import (
    Exists,
    Mode,
    Param,
    PointsTo,
    Pred,
    PredicateDef,
    PredInstance,
    Pure,
    star,
)
from repro.lang.mir import Program
from repro.lang.types import U64
from repro.solver import Solver
from repro.solver.sorts import INT, LFT, LOC
from repro.solver.terms import (
    Var,
    add,
    eq,
    fresh_var,
    intlit,
    le,
    lt,
    reallit,
)


@pytest.fixture()
def model():
    program = Program()
    p = Var("p", LOC)
    s = Var("s", INT)
    v = Var("v", INT)
    program.predicates["cell"] = PredicateDef(
        name="cell",
        params=(Param(p, Mode.IN), Param(s, Mode.OUT)),
        disjuncts=(
            Exists(
                (v,),
                star(
                    PointsTo(p, U64, v),
                    Pure(le(intlit(0), v)),  # the u64 validity invariant
                    Pure(eq(s, add(v, intlit(1)))),
                ),
            ),
        ),
    )
    kappa = Var("κ", LFT)
    x = Var("x", INT)
    program.predicates["guarded_cell"] = PredicateDef(
        name="guarded_cell",
        params=(Param(kappa, Mode.IN), Param(p, Mode.IN)),
        disjuncts=(
            Exists((v,), star(PointsTo(p, U64, v), Pure(le(intlit(0), v)))),
        ),
        guard="κ",
    )
    program.predicates["abstract_one"] = PredicateDef(
        name="abstract_one",
        params=(Param(p, Mode.IN),),
        abstract=True,
    )
    return RustStateModel(program, Solver())


def loc(name):
    return Var(name, LOC)


class TestUnfoldFold:
    def test_roundtrip(self, model):
        p = loc("p1")
        [s0] = produce(model, RustState(), PointsTo(p, U64, intlit(4)))
        [s1] = fold(model, s0, "cell", {0: p})
        assert s1.preds and s1.preds[0].name == "cell"
        assert model.solver.entails([], eq(s1.preds[0].args[1], intlit(5)))
        [s2] = unfold(model, s1, s1.preds[0])
        assert not s2.preds
        ctx = model.heap_ctx(s2)
        [ld] = [o for o in s2.heap.load(p, U64, ctx) if o.error is None]
        assert model.solver.entails(s2.pc, eq(ld.value, intlit(4)))

    def test_unfold_abstract_rejected(self, model):
        s = RustState().add_pred(PredInstance("abstract_one", (loc("p2"),)))
        with pytest.raises(TacticError):
            unfold(model, s, s.preds[0])

    def test_fold_without_resource_fails(self, model):
        with pytest.raises(TacticError):
            fold(model, RustState(), "cell", {0: loc("p3")})

    def test_stats_counted(self, model):
        stats = TacticStats()
        p = loc("p4")
        [s0] = produce(model, RustState(), PointsTo(p, U64, intlit(4)))
        [s1] = fold(model, s0, "cell", {0: p}, stats)
        unfold(model, s1, s1.preds[0], stats)
        assert stats.folds == 1
        assert stats.unfolds == 1


class TestGuarded:
    def _opened(self, model):
        kappa = fresh_var("κ", LFT)
        p = loc("p5")
        state = RustState(lifetimes=RustState().lifetimes.new_lifetime(kappa))
        borrow = BorrowInstance("guarded_cell", kappa, (p,))
        state = state.__class__(
            heap=state.heap,
            lifetimes=state.lifetimes,
            borrows=state.borrows.add_borrow(borrow),
            preds=state.preds,
            obs=state.obs,
            proph=state.proph,
            pc=state.pc,
        )
        return model, state, borrow, kappa, p

    def test_gunfold_trades_token_for_contents(self, model):
        model, state, borrow, kappa, p = self._opened(model)
        opened = gunfold(model, state, borrow)
        assert opened
        s = opened[0]
        # The borrow is gone, a closing token holds its place.
        assert not s.borrows.borrows
        assert s.borrows.tokens
        # The contents are available.
        ctx = model.heap_ctx(s)
        assert any(o.error is None for o in s.heap.load(p, U64, ctx))
        # Half the token was consumed.
        held = s.lifetimes.held_fraction(kappa, model.solver, s.pc)
        assert model.solver.entails([], eq(held, reallit("1/2")))

    def test_gfold_restores_everything(self, model):
        model, state, borrow, kappa, p = self._opened(model)
        [opened] = gunfold(model, state, borrow)
        [closed] = gfold(model, opened, opened.borrows.tokens[0])
        assert closed.borrows.borrows
        assert not closed.borrows.tokens
        held = closed.lifetimes.held_fraction(kappa, model.solver, closed.pc)
        assert model.solver.entails([], eq(held, reallit(1)))

    def test_gfold_fails_if_invariant_broken(self, model):
        model, state, borrow, kappa, p = self._opened(model)
        [opened] = gunfold(model, state, borrow)
        # Break the invariant: write a negative... u64 can't be negative;
        # instead consume the cell away so it cannot be re-established.
        ctx = model.heap_ctx(opened)
        [gone] = [
            o for o in opened.heap.consume_points_to(p, U64, ctx) if o.error is None
        ]
        import dataclasses

        broken = dataclasses.replace(opened, heap=gone.heap)
        with pytest.raises(TacticError):
            gfold(model, broken, broken.borrows.tokens[0])

    def test_gunfold_without_token_fails(self, model):
        kappa = fresh_var("κdead", LFT)
        p = loc("p6")
        borrow = BorrowInstance("guarded_cell", kappa, (p,))
        state = RustState(borrows=RustState().borrows.add_borrow(borrow))
        with pytest.raises(TacticError):
            gunfold(model, state, borrow)

    def test_close_all_borrows(self, model):
        model, state, borrow, kappa, p = self._opened(model)
        [opened] = gunfold(model, state, borrow)
        closed = close_all_borrows(model, opened)
        assert closed.borrows.borrows
        assert not closed.borrows.tokens


class TestUnfoldToProve:
    def test_exposes_locked_fact(self, model):
        # Produce the predicate folded with an *opaque* out-argument:
        # the fact s = v + 1 (hence s >= 1) lives only in the definition.
        p = loc("p7")
        s_var = Var("s_opaque", INT)
        [s1] = produce(model, RustState(), Pred("cell", (p, s_var)))
        goal = le(intlit(1), s_var)
        assert not model.solver.entails(s1.pc, goal)
        proven = unfold_to_prove(model, s1, goal)
        assert proven is not None
        assert model.solver.entails(proven.pc, goal)

    def test_gives_up_gracefully(self, model):
        assert unfold_to_prove(model, RustState(), eq(intlit(0), intlit(1))) is None
